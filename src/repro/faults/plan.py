"""Fault plans: *what* can fail, how often, and in which time window.

A :class:`FaultPlan` is a frozen, fully declarative description of the
faults one run may experience — it carries **no state**, so the same plan
object can parameterize any number of runs.  Randomness lives entirely in
:class:`~repro.faults.injectors.FaultInjector`, which derives its streams
from ``plan.seed`` — never from the simulator's RNG — so a zero-fault
plan leaves every simulation stream untouched and the run is bit-identical
to one with no fault layer at all.

Plans have a compact textual form for the CLI (``--faults``)::

    sensor_dropout:0.05,npu_failure:0.02

i.e. comma-separated ``kind:rate`` pairs, where ``rate`` is the per-
opportunity trigger probability (per fresh 20 Hz sensor sample for sensor
faults, per inference call for NPU faults, per controller invocation for
deadline overruns).  The same string travels to forked experiment workers
through the ``REPRO_FAULTS`` / ``REPRO_FAULT_SEED`` environment variables,
mirroring how ``--trace`` rides on ``REPRO_TRACE``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.utils.floatcmp import is_zero

#: Environment carriers for fork-pool workers (see repro.cli).
FAULTS_ENV = "REPRO_FAULTS"
FAULT_SEED_ENV = "REPRO_FAULT_SEED"

#: Every fault kind the injector understands, with the opportunity each
#: rate is measured against.
FAULT_KINDS: Tuple[str, ...] = (
    "sensor_dropout",  # per fresh sensor sample: reading lost, hold EMA
    "sensor_stuck",  # per fresh sensor sample: value freezes for duration_s
    "sensor_spike",  # per fresh sensor sample: +magnitude_c transient
    "npu_failure",  # per inference call: NPU call errors out immediately
    "npu_timeout",  # per inference call: NPU call hangs until the budget
    "deadline_overrun",  # per controller invocation: injected stall
)

_SENSOR_KINDS = ("sensor_dropout", "sensor_stuck", "sensor_spike")
_NPU_KINDS = ("npu_failure", "npu_timeout")

#: Default stuck-at window and spike amplitude (overridable per spec).
DEFAULT_STUCK_DURATION_S = 1.0
DEFAULT_DROPOUT_DURATION_S = 0.05
DEFAULT_SPIKE_MAGNITUDE_C = 25.0


@dataclass(frozen=True)
class FaultSpec:
    """One fault family: kind, trigger rate, optional window and shape.

    ``rate`` is the probability of triggering at each opportunity.
    ``start_s``/``end_s`` bound the injection window in simulated time
    (``end_s=None`` means "until the end of the run").  ``duration_s``
    is how long a triggered stuck/dropout fault persists; ``magnitude_c``
    the amplitude of a spike.
    """

    kind: str
    rate: float
    start_s: float = 0.0
    end_s: Optional[float] = None
    duration_s: Optional[float] = None
    magnitude_c: float = DEFAULT_SPIKE_MAGNITUDE_C

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.start_s < 0.0:
            raise ValueError("start_s must be >= 0")
        if self.end_s is not None and self.end_s <= self.start_s:
            raise ValueError("end_s must be > start_s")
        if self.duration_s is not None and self.duration_s <= 0.0:
            raise ValueError("duration_s must be > 0")

    def active_at(self, now_s: float) -> bool:
        """Whether the injection window covers simulated time ``now_s``."""
        if now_s < self.start_s:
            return False
        return self.end_s is None or now_s < self.end_s

    def hold_duration_s(self) -> float:
        """How long a triggered fault persists (kind-specific default)."""
        if self.duration_s is not None:
            return self.duration_s
        if self.kind == "sensor_stuck":
            return DEFAULT_STUCK_DURATION_S
        return DEFAULT_DROPOUT_DURATION_S


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of :class:`FaultSpec` plus the injector seed."""

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def is_zero(self) -> bool:
        """True when the plan can never trigger anything."""
        return all(is_zero(spec.rate) for spec in self.specs)

    def sensor_specs(self) -> Tuple[FaultSpec, ...]:
        return tuple(s for s in self.specs if s.kind in _SENSOR_KINDS)

    def npu_specs(self) -> Tuple[FaultSpec, ...]:
        return tuple(s for s in self.specs if s.kind in _NPU_KINDS)

    def deadline_specs(self) -> Tuple[FaultSpec, ...]:
        return tuple(s for s in self.specs if s.kind == "deadline_overrun")

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)

    def describe(self) -> str:
        """The compact ``kind:rate,...`` form (round-trips via parse)."""
        return ",".join(f"{s.kind}:{s.rate:g}" for s in self.specs)

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Parse the CLI form ``kind:rate[,kind:rate...]``.

        An empty / whitespace-only string yields an empty (zero-fault)
        plan, which still installs the fault layer — useful for the
        bit-identity test and for baseline rows of a resilience sweep.
        """
        specs = []
        for token in text.split(","):
            token = token.strip()
            if not token:
                continue
            if ":" not in token:
                raise ValueError(
                    f"bad fault token {token!r}; expected kind:rate"
                )
            kind, rate_text = token.split(":", 1)
            try:
                rate = float(rate_text)
            except ValueError as exc:
                raise ValueError(
                    f"bad fault rate in {token!r}: {rate_text!r}"
                ) from exc
            specs.append(FaultSpec(kind=kind.strip(), rate=rate))
        return cls(specs=tuple(specs), seed=seed)

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """Read ``REPRO_FAULTS`` / ``REPRO_FAULT_SEED``; None when unset.

        This is the fork-safe carrier: the CLI writes the env vars once in
        the parent and every forked experiment worker inherits them, so
        each cell's simulator sees the same plan without extra plumbing.
        """
        text = os.environ.get(FAULTS_ENV)
        if text is None:
            return None
        seed = int(os.environ.get(FAULT_SEED_ENV, "0"))
        return cls.parse(text, seed=seed)

    def counts_by_kind(self) -> Dict[str, int]:
        """Number of specs per kind (diagnostics / manifest metadata)."""
        out: Dict[str, int] = {}
        for spec in self.specs:
            out[spec.kind] = out.get(spec.kind, 0) + 1
        return out
