"""Deterministic fault injectors and the fault-tolerant sensor.

The :class:`FaultInjector` owns the *only* randomness in the fault layer:
one child stream of ``RandomSource(plan.seed)`` **per fault kind**
(``faults/<kind>``), so

* the simulation's own streams (sensor noise, workload generation) are
  never consumed by fault decisions — a zero-fault plan is bit-identical
  to a run with no fault layer at all, and
* changing the rate of one kind never perturbs the trigger pattern of
  another (each kind draws from its private stream at its own
  opportunities).

:class:`FaultTolerantSensor` extends the thermal sensor with the sensor-
side fault model (dropout / stuck-at / spike) *and* the first graceful-
degradation path: through a dropout it serves the last-valid EMA-smoothed
reading instead of garbage, and while stuck it self-reports ill health
(``stuck_active``) so the DTM can escalate to its fail-safe throttle
instead of trusting a frozen register.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.faults.plan import FaultPlan, FaultSpec
from repro.thermal.rc import RCThermalNetwork
from repro.thermal.sensor import TemperatureSensor
from repro.utils.ema import ExponentialMovingAverage
from repro.utils.rng import RandomSource


class FaultInjector:
    """Seed-driven trigger decisions, one private RNG stream per kind."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        base = RandomSource(plan.seed)
        self._streams: Dict[str, RandomSource] = {
            spec.kind: base.child(f"faults/{spec.kind}")
            for spec in plan.specs
        }
        #: Trigger events per kind (an ongoing stuck window counts once).
        self.injected_counts: Dict[str, int] = {}

    def _roll(self, spec: FaultSpec, now_s: float) -> bool:
        """One trigger decision for ``spec``; draws from its own stream.

        The draw happens whenever the window is open — even at rate 0 —
        so a rate change never shifts *later* decisions of the same kind.
        """
        if not spec.active_at(now_s):
            return False
        hit = float(self._streams[spec.kind].uniform()) < spec.rate
        if hit:
            self.injected_counts[spec.kind] = (
                self.injected_counts.get(spec.kind, 0) + 1
            )
        return hit

    def _first_triggered(
        self, specs: Tuple[FaultSpec, ...], now_s: float
    ) -> Optional[FaultSpec]:
        """Roll every spec (stable draw pattern), return the first hit."""
        triggered: Optional[FaultSpec] = None
        for spec in specs:
            if self._roll(spec, now_s) and triggered is None:
                triggered = spec
        return triggered

    # ------------------------------------------------------------------ decisions
    def sensor_fault(self, now_s: float) -> Optional[FaultSpec]:
        """Decide at one fresh sensor sample; at most one fault applies."""
        return self._first_triggered(self.plan.sensor_specs(), now_s)

    def npu_fault(self, now_s: float) -> Optional[FaultSpec]:
        """Decide at one NPU inference call (failure beats timeout)."""
        return self._first_triggered(self.plan.npu_specs(), now_s)

    def deadline_overrun(self, now_s: float) -> bool:
        """Decide at one controller invocation: injected stall?"""
        return self._first_triggered(self.plan.deadline_specs(), now_s) is not None

    def total_injected(self) -> int:
        return sum(self.injected_counts.values())


class FaultTolerantSensor(TemperatureSensor):
    """Thermal sensor with injectable faults and EMA hold-through.

    Behaviour per fresh 20 Hz sample (the injector decides once per
    sample, never on held reads):

    * **healthy** — measure exactly as the base class (same noise draw),
      and fold the reading into the EMA;
    * **dropout** — the reading is lost; serve the last-valid EMA value
      for ``duration_s`` and count the held reads.  Downstream consumers
      (QoS-DVFS, DTM) see a sane stale value instead of garbage;
    * **stuck** — the previously reported value freezes for
      ``duration_s``; :meth:`stuck_active` reports ill health so the DTM
      escalates to its fail-safe throttle rather than trusting the frozen
      register (a blind "same value twice" detector would false-trigger
      at quantized steady state);
    * **spike** — a fresh measurement plus ``magnitude_c`` (an EMI/driver
      glitch): visible to the DTM, excluded from the EMA so one glitch
      does not poison the hold-through value.

    With an empty plan no injector stream is ever consulted with a spec,
    and the read path reduces to the base class — bit-identical readings.
    """

    def __init__(
        self,
        network: RCThermalNetwork,
        injector: FaultInjector,
        nodes: Optional[List[str]] = None,
        sample_period_s: float = 0.05,
        quantization_c: float = 0.1,
        noise_std_c: float = 0.0,
        rng: Optional[RandomSource] = None,
        ema_alpha: float = 0.3,
    ) -> None:
        super().__init__(
            network,
            nodes=nodes,
            sample_period_s=sample_period_s,
            quantization_c=quantization_c,
            noise_std_c=noise_std_c,
            rng=rng,
        )
        self.injector = injector
        self._ema = ExponentialMovingAverage(ema_alpha)
        self._dropout_until_s = float("-inf")
        self._stuck_until_s = float("-inf")
        self._stuck_value: Optional[float] = None
        #: Reads served from the EMA hold instead of a live measurement.
        self.held_reads = 0
        #: Trigger events seen, by kind (sensor kinds only).
        self.fault_events: Dict[str, int] = {}

    # ------------------------------------------------------------------ health
    def stuck_active(self, now_s: float) -> bool:
        """Self-reported health: a stuck-at fault currently holds."""
        return now_s < self._stuck_until_s

    def dropout_active(self, now_s: float) -> bool:
        """Self-reported health: a dropout window currently holds."""
        return now_s < self._dropout_until_s

    def healthy(self, now_s: float) -> bool:
        return not (self.stuck_active(now_s) or self.dropout_active(now_s))

    # ------------------------------------------------------------------ reading
    def _held_value(self) -> float:
        """Best stale value available: EMA, then last sample, then ambient."""
        if self._ema.value is not None:
            return float(self._ema.value)
        if self._last_value is not None:
            return float(self._last_value)
        return float(self.network.ambient_temp_c)

    def read(self, now_s: float) -> float:
        if not self._due(now_s):
            return float(self._last_value)
        if self.stuck_active(now_s):
            # Frozen register: re-report the stuck value, no measurement.
            stuck = self._stuck_value
            self._record(
                now_s, stuck if stuck is not None else self._held_value()
            )
            return float(self._last_value)
        if self.dropout_active(now_s):
            self.held_reads += 1
            self._record(now_s, self._held_value())
            return float(self._last_value)
        spec = self.injector.sensor_fault(now_s)
        if spec is None:
            value = self._measure()
            self._ema.update(value)
            self._record(now_s, value)
            return float(self._last_value)
        self.fault_events[spec.kind] = self.fault_events.get(spec.kind, 0) + 1
        if spec.kind == "sensor_dropout":
            self._dropout_until_s = now_s + spec.hold_duration_s()
            self.held_reads += 1
            self._record(now_s, self._held_value())
        elif spec.kind == "sensor_stuck":
            stuck = (
                float(self._last_value)
                if self._last_value is not None
                else self._measure()
            )
            self._stuck_value = stuck
            self._stuck_until_s = now_s + spec.hold_duration_s()
            self._record(now_s, stuck)
        else:  # sensor_spike
            value = self._measure() + spec.magnitude_c
            # Deliberately not folded into the EMA: a one-sample glitch
            # must not poison the dropout hold-through value.
            self._record(now_s, value)
        return float(self._last_value)

    def reset(self) -> None:
        super().reset()
        self._ema.reset()
        self._dropout_until_s = float("-inf")
        self._stuck_until_s = float("-inf")
        self._stuck_value = None
        self.held_reads = 0
        self.fault_events = {}
