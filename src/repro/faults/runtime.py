"""The per-run fault runtime: plan + injector + degradation + sensor.

One :class:`FaultRuntime` is attached to a :class:`~repro.sim.kernel.Simulator`
as ``sim.faults`` when the run carries a fault plan (even a zero-fault
one).  Techniques and controllers consult it through small, read-mostly
methods so none of them needs constructor plumbing:

* the QoS-DVFS loop asks :meth:`sensor_dropout_active` to decide whether
  to hold its last-valid actuation,
* the TOP-IL migration policy asks :attr:`degradation` for NPU
  availability and safe-mode state,
* the DTM asks :meth:`sensor_stuck_active` to escalate to its fail-safe
  throttle,
* the observer reads :meth:`counters` once at finalize to publish the
  fault/recovery metrics (zero hot-path cost).

``sim.faults is None`` (the default) means "no fault layer": every
consultation site guards on that, the same single ``is None`` test
discipline the observability layer uses.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.faults.degrade import DegradationManager
from repro.faults.injectors import FaultInjector, FaultTolerantSensor
from repro.faults.plan import FaultPlan


class FaultRuntime:
    """Mutable per-run fault state, coordinated behind one handle."""

    def __init__(
        self,
        plan: FaultPlan,
        degradation: Optional[DegradationManager] = None,
    ) -> None:
        self.plan = plan
        self.injector = FaultInjector(plan)
        self.degradation = degradation or DegradationManager()
        self.sensor: Optional[FaultTolerantSensor] = None
        #: Free-form event counters from consultation sites
        #: (``qos_dvfs.hold``, ``dtm.failsafe``, ``npu.cpu_fallback``...).
        self.event_counts: Dict[str, int] = {}

    @classmethod
    def from_plan(cls, plan: FaultPlan) -> "FaultRuntime":
        return cls(plan)

    def attach_sensor(self, sensor: FaultTolerantSensor) -> None:
        """Called by the kernel after building the fault-tolerant sensor."""
        self.sensor = sensor

    # ------------------------------------------------------------------ health
    def sensor_dropout_active(self, now_s: float) -> bool:
        return self.sensor is not None and self.sensor.dropout_active(now_s)

    def sensor_stuck_active(self, now_s: float) -> bool:
        return self.sensor is not None and self.sensor.stuck_active(now_s)

    # ------------------------------------------------------------------ counters
    def count(self, name: str, n: int = 1) -> None:
        """Count one named degradation event (cheap dict bump)."""
        self.event_counts[name] = self.event_counts.get(name, 0) + n

    def counters(self, now_s: float) -> Dict[str, float]:
        """One flat snapshot for metrics publication / summaries."""
        out: Dict[str, float] = {}
        for kind, count in self.injector.injected_counts.items():
            out[f"injected.{kind}"] = float(count)
        if self.sensor is not None:
            out["sensor.held_reads"] = float(self.sensor.held_reads)
        for (path, state), count in self.degradation.transition_counts.items():
            out[f"transition.{path}.{state}"] = float(count)
        out["safe_mode_time_s"] = self.degradation.safe_mode_time_s(now_s)
        out["cpu_fallback_invocations"] = float(
            self.degradation.cpu_fallback_invocations
        )
        for name, count in self.event_counts.items():
            out[f"event.{name}"] = float(count)
        return out
