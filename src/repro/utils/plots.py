"""ASCII bar charts and sparklines for experiment reports.

The benchmark harness prints the same *series* the paper's figures plot;
these helpers make the magnitudes readable in a terminal without any
plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

_SPARK_BLOCKS = " .:-=+*#%@"


def ascii_bars(
    rows: Sequence[Tuple[str, float]],
    width: int = 40,
    unit: str = "",
    baseline: Optional[float] = None,
) -> str:
    """Render ``(label, value)`` rows as horizontal bars.

    ``baseline`` anchors the left edge (default: 0 or the min value if any
    value is below zero), so temperature comparisons can start near
    ambient instead of zero.
    """
    if not rows:
        raise ValueError("no rows to plot")
    values = [v for _, v in rows]
    lo = baseline if baseline is not None else min(0.0, min(values))
    hi = max(values)
    span = max(1e-12, hi - lo)
    label_width = max(len(label) for label, _ in rows)
    lines: List[str] = []
    for label, value in rows:
        filled = int(round((value - lo) / span * width))
        filled = max(0, min(width, filled))
        bar = "#" * filled
        lines.append(f"{label.ljust(label_width)} | {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def sparkline(values: Iterable[float], width: int = 60) -> str:
    """Render a numeric series as a one-line sparkline."""
    series = list(values)
    if not series:
        return ""
    stride = max(1, len(series) // width)
    sampled = series[::stride][:width]
    lo, hi = min(sampled), max(sampled)
    span = max(1e-12, hi - lo)
    return "".join(
        _SPARK_BLOCKS[int((v - lo) / span * (len(_SPARK_BLOCKS) - 1))]
        for v in sampled
    )
