"""Minimal ASCII table rendering for experiment reports.

The benchmark harness prints the same rows/series the paper reports; this
formatter keeps that output dependency-free and stable enough to diff.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _render(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width ASCII table."""
    rendered_rows: List[List[str]] = [[_render(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    sep = "-+-".join("-" * w for w in widths)
    lines = [fmt_row(list(headers)), sep]
    lines.extend(fmt_row(row) for row in rendered_rows)
    return "\n".join(lines)
