"""Exponential moving average used to smooth noisy run-time observations.

The DVFS control loop and the feature extractor both read performance
counters that fluctuate between 50 ms windows; a light EMA stabilizes the
estimates the way the paper's implementation smooths perf readings.
"""

from __future__ import annotations

from typing import Optional

from repro.utils.validation import check_in_range


class ExponentialMovingAverage:
    """First-order IIR smoother: ``y <- alpha * x + (1 - alpha) * y``.

    ``alpha = 1`` reproduces the raw signal; smaller values smooth more.
    Before the first observation the average is ``None``.
    """

    def __init__(self, alpha: float = 0.5) -> None:
        check_in_range("alpha", alpha, 0.0, 1.0)
        self.alpha = float(alpha)
        self._value: Optional[float] = None

    @property
    def value(self) -> Optional[float]:
        """The current smoothed value, or ``None`` if no samples were seen."""
        return self._value

    def update(self, sample: float) -> float:
        """Fold ``sample`` into the average and return the new value."""
        if self._value is None:
            self._value = float(sample)
        else:
            self._value = self.alpha * float(sample) + (1.0 - self.alpha) * self._value
        return self._value

    def reset(self) -> None:
        """Forget all history (used right after an application migration)."""
        self._value = None
