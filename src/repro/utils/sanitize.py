"""The ``REPRO_SANITIZE`` runtime sanitizer switch.

Setting ``REPRO_SANITIZE=1`` in the environment turns on per-step invariant
checks inside the simulation kernel (NaN-freedom of the thermal state,
thermal-node bounds, non-negative power injection, strictly monotone
simulated time).  The checks are cheap enough to leave on for the whole CI
suite but are **off by default**: the golden-trace equivalence guarantees
are about the unsanitized fast path, and production-scale runs should not
pay even the cheap price.

The flag is read through :func:`sanitizer_enabled` at ``Simulator``
construction time, so a test can flip the environment per-instance.
"""

from __future__ import annotations

import os

__all__ = [
    "SANITIZE_ENV",
    "SanitizerError",
    "sanitizer_enabled",
    "MIN_PLAUSIBLE_TEMP_C",
    "MAX_PLAUSIBLE_TEMP_C",
]

#: Environment variable that enables the kernel sanitizer layer.
SANITIZE_ENV = "REPRO_SANITIZE"

_FALSEY = {"", "0", "false", "no", "off"}

#: Plausibility bounds for any thermal node (°C).  Violations indicate a
#: corrupted state vector or wildly wrong power injection, not physics: the
#: DTM throttles far below the upper bound and the ambient sits far above
#: the lower one.
MIN_PLAUSIBLE_TEMP_C = -40.0
MAX_PLAUSIBLE_TEMP_C = 150.0


class SanitizerError(AssertionError):
    """A kernel invariant failed while ``REPRO_SANITIZE`` was enabled."""


def sanitizer_enabled() -> bool:
    """True when ``REPRO_SANITIZE`` is set to a truthy value."""
    return os.environ.get(SANITIZE_ENV, "").strip().lower() not in _FALSEY
