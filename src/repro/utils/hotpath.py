"""The ``@hot_path`` marker for allocation-lean per-step functions.

Functions that run every simulation step (10 ms of simulated time) are
marked with :func:`hot_path`.  The decorator is a zero-overhead no-op at
run time — it only sets an attribute — but it is load-bearing for tooling:
``repro-lint`` (``tools/analysis``) enforces hot-path hygiene rules
(HOT001/HOT002: no comprehension allocation, no name-keyed dict rebuilds)
inside marked functions, so the PR 1 fast-path throughput cannot silently
regress through an innocent-looking refactor.
"""

from __future__ import annotations

from typing import Callable, TypeVar

F = TypeVar("F", bound=Callable[..., object])

#: Attribute set on marked functions (introspectable by tests and tooling).
HOT_PATH_ATTR = "__repro_hot_path__"


def hot_path(fn: F) -> F:
    """Mark ``fn`` as being on the per-step simulation hot path."""
    setattr(fn, HOT_PATH_ATTR, True)
    return fn


def is_hot_path(fn: Callable[..., object]) -> bool:
    """True when ``fn`` (or the function under a method wrapper) is marked."""
    return bool(getattr(fn, HOT_PATH_ATTR, False))
