"""Deterministic random-number handling.

Every stochastic component in the reproduction (workload generation, NN
weight initialization, RL exploration, measurement noise) draws from a
:class:`RandomSource` so that experiments are exactly reproducible given a
seed, and so that independent components can be given independent streams.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, "RandomSource", None]

#: numpy-style ``size`` argument: scalar draw (None), 1-D count, or shape.
SizeLike = Union[int, Tuple[int, ...], None]


class RandomSource:
    """A seeded random generator with cheap, collision-free child streams.

    ``RandomSource`` wraps :class:`numpy.random.Generator` and adds
    :meth:`child`, which derives an independent stream from a string key.
    This gives components stable randomness that does not shift when an
    unrelated component adds or removes draws.
    """

    def __init__(self, seed: SeedLike = None) -> None:
        if isinstance(seed, RandomSource):
            self._seed_seq = seed._seed_seq.spawn(1)[0]
        elif isinstance(seed, np.random.Generator):
            # Re-seed from the generator; used rarely (tests only).
            self._seed_seq = np.random.SeedSequence(int(seed.integers(2**32)))
        else:
            self._seed_seq = np.random.SeedSequence(seed)
        self.generator = np.random.Generator(np.random.PCG64(self._seed_seq))

    def child(self, key: str) -> "RandomSource":
        """Derive an independent stream identified by ``key``.

        The same (seed, key) pair always produces the same stream.
        """
        digest = np.frombuffer(key.encode("utf-8"), dtype=np.uint8)
        entropy = [int(x) for x in digest] or [0]
        child_seq = np.random.SeedSequence(
            entropy=self._seed_seq.entropy, spawn_key=tuple(entropy)
        )
        source = RandomSource.__new__(RandomSource)
        source._seed_seq = child_seq
        source.generator = np.random.Generator(np.random.PCG64(child_seq))
        return source

    # Convenience passthroughs -------------------------------------------------
    def uniform(
        self, low: float = 0.0, high: float = 1.0, size: SizeLike = None
    ) -> Any:
        return self.generator.uniform(low, high, size)

    def normal(
        self, loc: float = 0.0, scale: float = 1.0, size: SizeLike = None
    ) -> Any:
        return self.generator.normal(loc, scale, size)

    def integers(
        self, low: int, high: Optional[int] = None, size: SizeLike = None
    ) -> Any:
        return self.generator.integers(low, high, size)

    def choice(
        self,
        seq: Sequence[Any],
        size: SizeLike = None,
        replace: bool = True,
        p: Optional[Sequence[float]] = None,
    ) -> Any:
        return self.generator.choice(seq, size=size, replace=replace, p=p)

    def exponential(self, scale: float = 1.0, size: SizeLike = None) -> Any:
        return self.generator.exponential(scale, size)

    def shuffle(self, seq: Any) -> None:
        self.generator.shuffle(seq)

    def permutation(self, x: Any) -> Any:
        return self.generator.permutation(x)


def spawn_rng(seed: SeedLike, key: str) -> RandomSource:
    """Create a child :class:`RandomSource` directly from a seed and a key."""
    return RandomSource(seed).child(key)
