"""Small argument-validation helpers.

All helpers raise :class:`ValueError` with a message that names the offending
parameter, which keeps constructor bodies short while producing actionable
errors from deep inside the simulator.
"""

from __future__ import annotations

import math
from typing import Iterable, Union

import numpy as np

Number = Union[int, float]


def check_positive(name: str, value: Number) -> None:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_non_negative(name: str, value: Number) -> None:
    """Raise ``ValueError`` unless ``value`` is >= 0."""
    if not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_probability(name: str, value: Number) -> None:
    """Raise ``ValueError`` unless ``value`` lies in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


def check_in_range(name: str, value: Number, low: Number, high: Number) -> None:
    """Raise ``ValueError`` unless ``low <= value <= high``."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")


def check_finite(name: str, value: Union[Number, Iterable[Number], np.ndarray]) -> None:
    """Raise ``ValueError`` if ``value`` (scalar or array) contains NaN/inf."""
    arr = np.asarray(value, dtype=float)
    if arr.size == 1:
        scalar = float(arr)
        if not math.isfinite(scalar):
            raise ValueError(f"{name} must be finite, got {scalar!r}")
        return
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must be finite everywhere")
