"""Shared utilities: units, validation, RNG handling, small numerics.

These helpers are deliberately dependency-light so that every other
subpackage (platform, thermal, simulator, learning) can import them without
pulling in heavyweight machinery.
"""

from repro.utils.units import (
    GHZ,
    MHZ,
    KHZ,
    HZ,
    MS,
    US,
    celsius_to_kelvin,
    kelvin_to_celsius,
    format_frequency,
    format_temperature,
    format_time,
    mips,
)
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)
from repro.utils.rng import RandomSource, spawn_rng
from repro.utils.ema import ExponentialMovingAverage
from repro.utils.tables import ascii_table
from repro.utils.plots import ascii_bars, sparkline

__all__ = [
    "GHZ",
    "MHZ",
    "KHZ",
    "HZ",
    "MS",
    "US",
    "celsius_to_kelvin",
    "kelvin_to_celsius",
    "format_frequency",
    "format_temperature",
    "format_time",
    "mips",
    "check_finite",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "RandomSource",
    "spawn_rng",
    "ExponentialMovingAverage",
    "ascii_table",
    "ascii_bars",
    "sparkline",
]
