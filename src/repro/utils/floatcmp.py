"""Approved float-comparison helpers.

Exact ``==``/``!=`` on floats is banned by ``repro-lint`` rule FLT001;
these helpers are the sanctioned spellings.  ``approx_eq`` is a symmetric
absolute+relative tolerance check (the same shape as ``math.isclose`` with
explicit defaults chosen for this codebase's magnitudes: temperatures in
tens of °C, powers in watts, times in seconds).  ``is_zero`` is the
documented way to guard divisions: it is an *exact* zero test, because its
callers short-circuit an algebraic identity (``x/0`` vs ``x`` untouched),
not a numerical closeness question.
"""

from __future__ import annotations

#: Default tolerances for approx_eq; loose enough for accumulated float
#: error, tight enough to distinguish any two adjacent VF set points.
DEFAULT_REL_TOL = 1e-9
DEFAULT_ABS_TOL = 1e-12


def approx_eq(
    a: float,
    b: float,
    rel_tol: float = DEFAULT_REL_TOL,
    abs_tol: float = DEFAULT_ABS_TOL,
) -> bool:
    """True when ``a`` and ``b`` agree within relative/absolute tolerance."""
    diff = abs(a - b)
    return diff <= abs_tol or diff <= rel_tol * max(abs(a), abs(b))


def is_zero(x: float) -> bool:
    """Exact zero test, for algebraic short-circuits and division guards."""
    return x == 0.0  # repro-lint: ignore[FLT001]


def is_exactly(a: float, b: float) -> bool:
    """Exact float equality, spelled loudly.

    For sentinel/default comparisons where the value is propagated
    bit-for-bit (e.g. "scale is exactly the 1.0 default, skip rescaling"),
    not computed.  Prefer :func:`approx_eq` for anything arithmetic.
    """
    return a == b  # repro-lint: ignore[FLT001]
