"""Physical units and formatting helpers.

Conventions used across the reproduction:

* Frequencies are stored in **Hz** as floats (e.g. ``1.844 * GHZ``).
* Time is stored in **seconds** as floats.
* Temperatures are stored in **degrees Celsius** (the thermal network
  internally works with temperature *differences*, which are identical in
  Celsius and Kelvin).
* Performance is stored in **instructions per second** (IPS); the paper
  reports MIPS, so :func:`mips` converts for readability.
"""

from __future__ import annotations

# --- frequency multipliers -------------------------------------------------
HZ = 1.0
KHZ = 1e3
MHZ = 1e6
GHZ = 1e9

# --- time multipliers -------------------------------------------------------
US = 1e-6
MS = 1e-3

_ZERO_CELSIUS_IN_KELVIN = 273.15


def celsius_to_kelvin(temp_c: float) -> float:
    """Convert a temperature from degrees Celsius to Kelvin."""
    return temp_c + _ZERO_CELSIUS_IN_KELVIN


def kelvin_to_celsius(temp_k: float) -> float:
    """Convert a temperature from Kelvin to degrees Celsius."""
    return temp_k - _ZERO_CELSIUS_IN_KELVIN


def mips(ips: float) -> float:
    """Convert instructions per second to millions of instructions per second."""
    return ips / 1e6


def format_frequency(freq_hz: float) -> str:
    """Render a frequency the way the paper does (e.g. ``1.8 GHz``)."""
    if freq_hz >= GHZ:
        return f"{freq_hz / GHZ:.2f} GHz"
    if freq_hz >= MHZ:
        return f"{freq_hz / MHZ:.0f} MHz"
    if freq_hz >= KHZ:
        return f"{freq_hz / KHZ:.0f} kHz"
    return f"{freq_hz:.0f} Hz"


def format_temperature(temp_c: float) -> str:
    """Render a temperature in the paper's style (e.g. ``42.5 °C``)."""
    return f"{temp_c:.1f} °C"


def format_time(seconds: float) -> str:
    """Render a duration with a sensible unit (s / ms / µs)."""
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= MS:
        return f"{seconds / MS:.2f} ms"
    return f"{seconds / US:.1f} µs"
