"""Command-line interface: run experiments, generate reports, manage the cache.

Usage::

    python -m repro.cli list
    python -m repro.cli run fig8 [--scale smoke|medium|paper]
                                 [--platform NAME]
                                 [--cache-dir DIR | --no-cache]
                                 [--trace] [--trace-dir DIR]
                                 [--faults PLAN] [--fault-seed N]
                                 [--chaos PLAN] [--chaos-seed N]
                                 [--checkpoint-dir DIR]
                                 [--checkpoint-period-s SECONDS]
    python -m repro.cli report [--scale medium] [--out EXPERIMENTS.md]
                               [--platform NAME]
                               [--cache-dir DIR | --no-cache]
                               [--trace] [--trace-dir DIR]
    python -m repro.cli platform list
    python -m repro.cli platform show NAME
    python -m repro.cli cache stats [--cache-dir DIR]
    python -m repro.cli cache gc [--cache-dir DIR] [--max-age-s SECONDS]
    python -m repro.cli cache clear [--cache-dir DIR]

``run`` executes one experiment from the registry
(:data:`repro.experiments.EXPERIMENTS`) and prints its figure rows;
``report`` runs the whole evaluation and writes the paper-vs-measured
markdown.  Both consult the content-addressed artifact store under
``--cache-dir`` (default ``.repro_cache``): datasets, models, Q-tables,
trace grids, and experiment-grid cells are reused across invocations when
their keys match, so a warm re-run recomputes only what changed.
``--no-cache`` disables the store entirely.  ``--cache`` is accepted as an
alias of ``--cache-dir``.  See ``docs/caching.md``.

``--platform`` selects the simulated SoC from the platform registry
(default ``hikey970``); ``platform list`` enumerates the registry and
``platform show NAME`` prints one platform's declarative spec.  Artifact
keys include the platform fingerprint, so per-platform results coexist in
one cache.  See ``docs/platforms.md``.

``cache`` inspects or prunes the store: ``stats`` prints the per-kind
entry count and byte footprint, ``gc`` reaps temp files from killed
writers (plus entries older than ``--max-age-s``, when given), and
``clear`` deletes everything.

``--trace`` turns on the observability layer (equivalent to setting
``REPRO_TRACE=1``): every simulation writes a JSONL event log, a Chrome
trace (load it in ``chrome://tracing``), and a run manifest under
``--trace-dir`` (default ``.repro_obs``).  See ``docs/observability.md``.

``--faults`` attaches the deterministic fault-injection layer (equivalent
to setting ``REPRO_FAULTS``) using the compact plan form
``kind:rate[,kind:rate...]``, e.g. ``sensor_dropout:0.05,npu_failure:0.02``;
``--fault-seed`` seeds the injector streams.  Fault plans fold into the
artifact-store keys, so faulted and fault-free runs never share cache
entries.  See ``docs/resilience.md``.

``--chaos`` attaches the *infrastructure* chaos layer (equivalent to
setting ``REPRO_CHAOS``) using the plan form ``kind:rate[@N]``, e.g.
``store_write_error:0.1,worker_kill:0.5``: it injects host-level failures
(store I/O errors, torn writes, ENOSPC, worker SIGKILLs) without touching
simulation results; ``--chaos-seed`` seeds its streams.  ``--checkpoint-dir``
enables periodic simulator checkpointing (``REPRO_CHECKPOINT_DIR``) so
killed grid cells resume instead of restarting; ``--checkpoint-period-s``
sets the snapshot cadence in simulated seconds.  See
``docs/resilience.md``.
"""

from __future__ import annotations

import argparse
import os
import sys
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.chaos import CHAOS_ENV, CHAOS_SEED_ENV, ChaosPlan
from repro.experiments import EXPERIMENTS
from repro.experiments.assets import AssetConfig, AssetStore
from repro.experiments.report import ReportScale, generate_report
from repro.faults import FAULT_SEED_ENV, FAULTS_ENV, FaultPlan
from repro.obs.config import TRACE_DIR_ENV, TRACE_ENV
from repro.sim.checkpoint import (
    CHECKPOINT_DIR_ENV,
    CHECKPOINT_PERIOD_ENV,
    DEFAULT_CHECKPOINT_PERIOD_S,
    CheckpointPolicy,
)
from repro.platform.registry import get_platform, get_spec, platform_names
from repro.store import ArtifactStore
from repro.utils.tables import ascii_table

DEFAULT_CACHE = ".repro_cache"
DEFAULT_PLATFORM = "hikey970"


def _scale(name: str) -> ReportScale:
    """Resolve a ``--scale`` name to a :class:`ReportScale`, or exit."""
    factory = {
        "smoke": ReportScale.smoke,
        "medium": ReportScale.medium,
        "paper": ReportScale.paper,
    }.get(name)
    if factory is None:
        raise SystemExit(f"unknown scale {name!r}; use smoke|medium|paper")
    return factory()


def _assets(
    cache_dir: Optional[str],
    scale_name: str,
    platform_name: str = DEFAULT_PLATFORM,
) -> AssetStore:
    """Build (or load from the store at ``cache_dir``) one scale's assets.

    ``cache_dir=None`` disables the artifact store: everything is built
    in-process and nothing is persisted.  ``platform_name`` selects the
    simulated SoC from the platform registry.
    """
    if scale_name == "paper":
        config = AssetConfig.paper(cache_dir=cache_dir)
    elif scale_name == "medium":
        config = AssetConfig(
            n_scenarios=40,
            vf_levels_per_cluster=4,
            max_aoi_candidates=4,
            n_models=3,
            cache_dir=cache_dir,
        )
    else:
        config = AssetConfig.smoke(cache_dir=cache_dir)
    try:
        platform = get_platform(platform_name)
    except KeyError:
        raise SystemExit(
            f"unknown platform {platform_name!r}; "
            f"known: {platform_names()}"
        ) from None
    return AssetStore(platform, config=config)


def _resolve_cache_dir(args: argparse.Namespace) -> Optional[str]:
    """``--cache-dir`` unless ``--no-cache`` turns the store off."""
    if getattr(args, "no_cache", False):
        return None
    return str(args.cache_dir)


def _command_env(args: argparse.Namespace) -> Dict[str, str]:
    """Build the fork-inherited env carriers for one run/report command.

    The environment (not a config object) is the carrier on purpose: the
    experiment drivers fan out over a ``fork`` pool, and forked workers
    inherit the parent's environment, so every cell's ``Simulator`` sees
    the same observability switch and fault plan without extra plumbing.
    The ``--faults`` plan text is validated here so a typo fails fast
    instead of inside a worker.
    """
    updates: Dict[str, str] = {}
    if args.trace:
        updates[TRACE_ENV] = "1"
    if args.trace_dir is not None:
        updates[TRACE_DIR_ENV] = args.trace_dir
    if args.faults is not None:
        try:
            FaultPlan.parse(args.faults, seed=args.fault_seed)
        except ValueError as exc:
            raise SystemExit(f"bad --faults value: {exc}") from exc
        updates[FAULTS_ENV] = args.faults
        updates[FAULT_SEED_ENV] = str(args.fault_seed)
    if args.chaos is not None:
        try:
            ChaosPlan.parse(args.chaos, seed=args.chaos_seed)
        except ValueError as exc:
            raise SystemExit(f"bad --chaos value: {exc}") from exc
        updates[CHAOS_ENV] = args.chaos
        updates[CHAOS_SEED_ENV] = str(args.chaos_seed)
    if args.checkpoint_dir is not None:
        try:
            CheckpointPolicy(
                directory=args.checkpoint_dir,
                period_s=args.checkpoint_period_s,
            )
        except ValueError as exc:
            raise SystemExit(f"bad checkpoint options: {exc}") from exc
        updates[CHECKPOINT_DIR_ENV] = args.checkpoint_dir
        updates[CHECKPOINT_PERIOD_ENV] = str(args.checkpoint_period_s)
    return updates


@contextmanager
def _carrier_env(updates: Dict[str, str]) -> Iterator[None]:
    """Install env carriers for the duration of one command, symmetrically.

    Every key is restored to its prior value (or removed, if previously
    unset) on exit — including on error.  Without this, a ``--faults``
    run would leave ``REPRO_FAULTS`` behind in the process, and any later
    in-process run (tests, notebooks, library callers invoking
    :func:`main` twice) would silently inherit the stale plan *and* fold
    it into every ``ArtifactKey``, caching results under the wrong key.
    """
    saved = {key: os.environ.get(key) for key in updates}
    try:
        for key, value in updates.items():
            os.environ[key] = value
        yield
    finally:
        for key, prior in saved.items():
            if prior is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = prior


def _format_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    return f"{int(n)} B"


def _cache_command(args: argparse.Namespace) -> int:
    """``cache stats|gc|clear`` against the store at ``--cache-dir``."""
    store = ArtifactStore(str(args.cache_dir))
    if args.cache_command == "stats":
        per_kind = store.disk_stats()
        if not per_kind:
            print(f"artifact store at {store.root}: empty")
            return 0
        rows = [
            (stats.kind, stats.entries, _format_bytes(stats.bytes))
            for stats in per_kind
        ]
        rows.append(
            (
                "TOTAL",
                sum(s.entries for s in per_kind),
                _format_bytes(sum(s.bytes for s in per_kind)),
            )
        )
        print(f"artifact store at {store.root}:")
        print(ascii_table(["kind", "entries", "size"], rows))
        return 0
    if args.cache_command == "gc":
        removed = store.gc(max_age_s=args.max_age_s)
        print(f"removed {removed} file(s) from {store.root}")
        return 0
    if args.cache_command == "clear":
        removed = store.clear()
        print(f"removed {removed} file(s) from {store.root}")
        return 0
    return 2


def _platform_command(args: argparse.Namespace) -> int:
    """``platform list|show`` against the platform registry."""
    from repro.store.keys import platform_fingerprint

    if args.platform_command == "list":
        rows = []
        for name in platform_names():
            spec = get_spec(name)
            rows.append(
                (
                    name,
                    spec.n_cores,
                    ", ".join(spec.cluster_names),
                    "yes" if spec.npu.present else "no",
                    platform_fingerprint(get_platform(name)),
                )
            )
        print(
            ascii_table(
                ["platform", "cores", "clusters", "NPU", "fingerprint"], rows
            )
        )
        return 0
    if args.platform_command == "show":
        try:
            spec = get_spec(args.name)
        except KeyError:
            print(
                f"unknown platform {args.name!r}; known: {platform_names()}",
                file=sys.stderr,
            )
            return 2
        import json

        if spec.description:
            print(f"# {spec.description}")
        print(json.dumps(spec.to_dict(), indent=2))
        return 0
    return 2


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code.

    Args:
        argv: Argument list without the program name; ``None`` uses
            ``sys.argv[1:]``.

    Returns:
        ``0`` on success, ``2`` on unknown experiment or command.
    """
    parser = argparse.ArgumentParser(prog="repro.cli", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment")
    run_p.add_argument("--scale", default="smoke")

    report_p = sub.add_parser("report", help="run the whole evaluation")
    report_p.add_argument("--scale", default="medium")
    report_p.add_argument("--out", default="EXPERIMENTS.md")

    platform_p = sub.add_parser(
        "platform", help="inspect the platform registry"
    )
    platform_sub = platform_p.add_subparsers(
        dest="platform_command", required=True
    )
    platform_sub.add_parser("list", help="list registered platforms")
    platform_show_p = platform_sub.add_parser(
        "show", help="print one platform's declarative spec"
    )
    platform_show_p.add_argument("name")

    cache_p = sub.add_parser("cache", help="inspect or manage the artifact store")
    cache_sub = cache_p.add_subparsers(dest="cache_command", required=True)
    cache_stats_p = cache_sub.add_parser(
        "stats", help="per-kind entry count and byte footprint"
    )
    cache_gc_p = cache_sub.add_parser(
        "gc", help="reap temp files (and entries older than --max-age-s)"
    )
    cache_gc_p.add_argument(
        "--max-age-s",
        type=float,
        default=None,
        help="also remove entries older than this many seconds",
    )
    cache_clear_p = cache_sub.add_parser("clear", help="delete every entry")

    for cmd_p in (run_p, report_p, cache_stats_p, cache_gc_p, cache_clear_p):
        cmd_p.add_argument(
            "--cache-dir",
            "--cache",
            dest="cache_dir",
            default=DEFAULT_CACHE,
            help=f"artifact store root (default {DEFAULT_CACHE})",
        )
    for cmd_p in (run_p, report_p):
        cmd_p.add_argument(
            "--platform",
            default=DEFAULT_PLATFORM,
            help=f"platform registry name (default {DEFAULT_PLATFORM}; "
            "see `platform list`)",
        )
        cmd_p.add_argument(
            "--no-cache",
            action="store_true",
            help="disable the artifact store for this invocation",
        )
        cmd_p.add_argument(
            "--trace",
            action="store_true",
            help="enable observability (trace + metrics + run manifests)",
        )
        cmd_p.add_argument(
            "--trace-dir",
            default=None,
            help="directory for trace artifacts (default .repro_obs)",
        )
        cmd_p.add_argument(
            "--faults",
            default=None,
            metavar="PLAN",
            help="fault plan as kind:rate[,kind:rate...] "
            "(e.g. sensor_dropout:0.05,npu_failure:0.02)",
        )
        cmd_p.add_argument(
            "--fault-seed",
            type=int,
            default=0,
            help="seed for the fault injector's RNG streams (default 0)",
        )
        cmd_p.add_argument(
            "--chaos",
            default=None,
            metavar="PLAN",
            help="infrastructure chaos plan as kind:rate[@N][,...] "
            "(e.g. store_write_error:0.1,worker_kill:0.5)",
        )
        cmd_p.add_argument(
            "--chaos-seed",
            type=int,
            default=0,
            help="seed for the chaos engine's RNG streams (default 0)",
        )
        cmd_p.add_argument(
            "--checkpoint-dir",
            default=None,
            metavar="DIR",
            help="enable periodic simulator checkpointing into DIR "
            "(killed cells resume from their last snapshot)",
        )
        cmd_p.add_argument(
            "--checkpoint-period-s",
            type=float,
            default=DEFAULT_CHECKPOINT_PERIOD_S,
            help="simulated seconds between checkpoints (default 30)",
        )

    args = parser.parse_args(argv)

    if args.command == "list":
        print("\n".join(sorted(EXPERIMENTS)))
        return 0

    if args.command == "cache":
        return _cache_command(args)

    if args.command == "platform":
        return _platform_command(args)

    if args.command == "run":
        with _carrier_env(_command_env(args)):
            scale = _scale(args.scale)
            assets = _assets(
                _resolve_cache_dir(args), args.scale, args.platform
            )
            spec = EXPERIMENTS.get(args.experiment)
            if spec is None:
                print(
                    f"unknown experiment {args.experiment!r}; "
                    f"known: {sorted(EXPERIMENTS)}",
                    file=sys.stderr,
                )
                return 2
            print(spec.body(assets, scale, None))
        return 0

    if args.command == "report":
        with _carrier_env(_command_env(args)):
            scale = _scale(args.scale)
            assets = _assets(
                _resolve_cache_dir(args), args.scale, args.platform
            )
            report = generate_report(assets, scale)
            with open(args.out, "w") as handle:
                handle.write(report)
            print(f"wrote {args.out}")
        return 0

    return 2


if __name__ == "__main__":
    raise SystemExit(main())
