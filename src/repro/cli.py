"""Command-line interface: run experiments and generate reports.

Usage::

    python -m repro.cli list
    python -m repro.cli run fig8 [--scale smoke|medium|paper] [--cache DIR]
                                 [--trace] [--trace-dir DIR]
                                 [--faults PLAN] [--fault-seed N]
    python -m repro.cli report [--scale medium] [--out EXPERIMENTS.md]
                               [--trace] [--trace-dir DIR]

``run`` executes one experiment and prints its figure rows; ``report``
runs the whole evaluation and writes the paper-vs-measured markdown.

``--trace`` turns on the observability layer (equivalent to setting
``REPRO_TRACE=1``): every simulation writes a JSONL event log, a Chrome
trace (load it in ``chrome://tracing``), and a run manifest under
``--trace-dir`` (default ``.repro_obs``).  See ``docs/observability.md``.

``--faults`` attaches the deterministic fault-injection layer (equivalent
to setting ``REPRO_FAULTS``) using the compact plan form
``kind:rate[,kind:rate...]``, e.g. ``sensor_dropout:0.05,npu_failure:0.02``;
``--fault-seed`` seeds the injector streams.  See ``docs/resilience.md``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, Optional

from repro.experiments.assets import AssetConfig, AssetStore
from repro.experiments.report import ReportScale, generate_report
from repro.faults import FAULT_SEED_ENV, FAULTS_ENV, FaultPlan
from repro.obs.config import TRACE_DIR_ENV, TRACE_ENV

DEFAULT_CACHE = ".repro_cache"


def _scale(name: str) -> ReportScale:
    """Resolve a ``--scale`` name to a :class:`ReportScale`, or exit."""
    factory = {
        "smoke": ReportScale.smoke,
        "medium": ReportScale.medium,
        "paper": ReportScale.paper,
    }.get(name)
    if factory is None:
        raise SystemExit(f"unknown scale {name!r}; use smoke|medium|paper")
    return factory()


def _assets(cache_dir: str, scale_name: str) -> AssetStore:
    """Build (or load from ``cache_dir``) the assets for one scale."""
    if scale_name == "paper":
        config = AssetConfig.paper(cache_dir=cache_dir)
    elif scale_name == "medium":
        config = AssetConfig(
            n_scenarios=40,
            vf_levels_per_cluster=4,
            max_aoi_candidates=4,
            n_models=3,
            cache_dir=cache_dir,
        )
    else:
        config = AssetConfig.smoke(cache_dir=cache_dir)
    return AssetStore(config=config)


def _apply_trace_flags(trace: bool, trace_dir: Optional[str]) -> None:
    """Translate ``--trace``/``--trace-dir`` into the observability env.

    The environment (not a config object) is the carrier on purpose: the
    experiment drivers fan out over a ``fork`` pool, and forked workers
    inherit the parent's environment, so every cell's ``Simulator`` sees
    the same observability switch without any extra plumbing.
    """
    if trace:
        os.environ[TRACE_ENV] = "1"
    if trace_dir is not None:
        os.environ[TRACE_DIR_ENV] = trace_dir


def _apply_fault_flags(faults: Optional[str], fault_seed: int) -> None:
    """Translate ``--faults``/``--fault-seed`` into the fault-plan env.

    Same fork-safe carrier pattern as the trace flags: forked experiment
    workers inherit ``REPRO_FAULTS``/``REPRO_FAULT_SEED``, so every cell's
    run engine resolves the identical plan.  The plan text is validated
    here so a typo fails fast instead of inside a worker.
    """
    if faults is None:
        return
    try:
        FaultPlan.parse(faults, seed=fault_seed)
    except ValueError as exc:
        raise SystemExit(f"bad --faults value: {exc}") from exc
    os.environ[FAULTS_ENV] = faults
    os.environ[FAULT_SEED_ENV] = str(fault_seed)


def _experiments(scale: ReportScale, assets: AssetStore) -> Dict[str, Callable[[], str]]:
    """Map experiment names (``fig8``, ...) to zero-argument runners."""
    from repro.experiments.illustrative import run_illustrative
    from repro.experiments.main_mixed import run_main_mixed
    from repro.experiments.migration import run_migration_overhead
    from repro.experiments.model_eval import run_model_eval
    from repro.experiments.motivation import run_motivation
    from repro.experiments.nas import run_nas
    from repro.experiments.overhead import run_overhead
    from repro.experiments.resilience import run_resilience
    from repro.experiments.single_app import run_single_app

    return {
        "fig1": lambda: run_motivation(scale.motivation, assets.platform).report(),
        "fig3": lambda: run_nas(assets, scale.nas).report(),
        "fig5": lambda: run_migration_overhead(
            scale.migration, assets.platform
        ).report(),
        "fig7": lambda: run_illustrative(assets, scale.illustrative).report(),
        "fig8": lambda: run_main_mixed(assets, scale.main_mixed).report(),
        "fig10": lambda: run_main_mixed(
            assets, scale.main_mixed
        ).frequency_usage_report(
            cooling=scale.main_mixed.coolings[-1].name
        ),
        "fig11": lambda: run_single_app(assets, scale.single_app).report(),
        "model-eval": lambda: run_model_eval(assets, scale.model_eval).report(),
        "fig12": lambda: run_overhead(assets, scale.overhead).report(),
        "resilience": lambda: run_resilience(assets, scale.resilience).report(),
    }


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code.

    Args:
        argv: Argument list without the program name; ``None`` uses
            ``sys.argv[1:]``.

    Returns:
        ``0`` on success, ``2`` on unknown experiment or command.
    """
    parser = argparse.ArgumentParser(prog="repro.cli", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment")
    run_p.add_argument("--scale", default="smoke")
    run_p.add_argument("--cache", default=DEFAULT_CACHE)

    report_p = sub.add_parser("report", help="run the whole evaluation")
    report_p.add_argument("--scale", default="medium")
    report_p.add_argument("--out", default="EXPERIMENTS.md")
    report_p.add_argument("--cache", default=DEFAULT_CACHE)

    for cmd_p in (run_p, report_p):
        cmd_p.add_argument(
            "--trace",
            action="store_true",
            help="enable observability (trace + metrics + run manifests)",
        )
        cmd_p.add_argument(
            "--trace-dir",
            default=None,
            help="directory for trace artifacts (default .repro_obs)",
        )
        cmd_p.add_argument(
            "--faults",
            default=None,
            metavar="PLAN",
            help="fault plan as kind:rate[,kind:rate...] "
            "(e.g. sensor_dropout:0.05,npu_failure:0.02)",
        )
        cmd_p.add_argument(
            "--fault-seed",
            type=int,
            default=0,
            help="seed for the fault injector's RNG streams (default 0)",
        )

    args = parser.parse_args(argv)

    if args.command == "list":
        scale = ReportScale.smoke()
        names = _experiments(scale, _assets(DEFAULT_CACHE, "smoke"))
        print("\n".join(sorted(names)))
        return 0

    if args.command == "run":
        _apply_trace_flags(args.trace, args.trace_dir)
        _apply_fault_flags(args.faults, args.fault_seed)
        scale = _scale(args.scale)
        assets = _assets(args.cache, args.scale)
        experiments = _experiments(scale, assets)
        fn = experiments.get(args.experiment)
        if fn is None:
            print(
                f"unknown experiment {args.experiment!r}; "
                f"known: {sorted(experiments)}",
                file=sys.stderr,
            )
            return 2
        print(fn())
        return 0

    if args.command == "report":
        _apply_trace_flags(args.trace, args.trace_dir)
        _apply_fault_flags(args.faults, args.fault_seed)
        scale = _scale(args.scale)
        assets = _assets(args.cache, args.scale)
        report = generate_report(assets, scale)
        with open(args.out, "w") as handle:
            handle.write(report)
        print(f"wrote {args.out}")
        return 0

    return 2


if __name__ == "__main__":
    raise SystemExit(main())
