"""Command-line interface: run experiments and generate reports.

Usage::

    python -m repro.cli list
    python -m repro.cli run fig8 [--scale smoke|medium|paper] [--cache DIR]
    python -m repro.cli report [--scale medium] [--out EXPERIMENTS.md]

``run`` executes one experiment and prints its figure rows; ``report``
runs the whole evaluation and writes the paper-vs-measured markdown.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.experiments.assets import AssetConfig, AssetStore
from repro.experiments.report import ReportScale, generate_report

DEFAULT_CACHE = ".repro_cache"


def _scale(name: str) -> ReportScale:
    factory = {
        "smoke": ReportScale.smoke,
        "medium": ReportScale.medium,
        "paper": ReportScale.paper,
    }.get(name)
    if factory is None:
        raise SystemExit(f"unknown scale {name!r}; use smoke|medium|paper")
    return factory()


def _assets(cache_dir: str, scale_name: str) -> AssetStore:
    if scale_name == "paper":
        config = AssetConfig.paper(cache_dir=cache_dir)
    elif scale_name == "medium":
        config = AssetConfig(
            n_scenarios=40,
            vf_levels_per_cluster=4,
            max_aoi_candidates=4,
            n_models=3,
            cache_dir=cache_dir,
        )
    else:
        config = AssetConfig.smoke(cache_dir=cache_dir)
    return AssetStore(config=config)


def _experiments(scale: ReportScale, assets: AssetStore) -> Dict[str, Callable[[], str]]:
    from repro.experiments.illustrative import run_illustrative
    from repro.experiments.main_mixed import run_main_mixed
    from repro.experiments.migration import run_migration_overhead
    from repro.experiments.model_eval import run_model_eval
    from repro.experiments.motivation import run_motivation
    from repro.experiments.nas import run_nas
    from repro.experiments.overhead import run_overhead
    from repro.experiments.single_app import run_single_app

    return {
        "fig1": lambda: run_motivation(scale.motivation, assets.platform).report(),
        "fig3": lambda: run_nas(assets, scale.nas).report(),
        "fig5": lambda: run_migration_overhead(
            scale.migration, assets.platform
        ).report(),
        "fig7": lambda: run_illustrative(assets, scale.illustrative).report(),
        "fig8": lambda: run_main_mixed(assets, scale.main_mixed).report(),
        "fig10": lambda: run_main_mixed(
            assets, scale.main_mixed
        ).frequency_usage_report(
            cooling=scale.main_mixed.coolings[-1].name
        ),
        "fig11": lambda: run_single_app(assets, scale.single_app).report(),
        "model-eval": lambda: run_model_eval(assets, scale.model_eval).report(),
        "fig12": lambda: run_overhead(assets, scale.overhead).report(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro.cli", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment")
    run_p.add_argument("--scale", default="smoke")
    run_p.add_argument("--cache", default=DEFAULT_CACHE)

    report_p = sub.add_parser("report", help="run the whole evaluation")
    report_p.add_argument("--scale", default="medium")
    report_p.add_argument("--out", default="EXPERIMENTS.md")
    report_p.add_argument("--cache", default=DEFAULT_CACHE)

    args = parser.parse_args(argv)

    if args.command == "list":
        scale = ReportScale.smoke()
        names = _experiments(scale, _assets(DEFAULT_CACHE, "smoke"))
        print("\n".join(sorted(names)))
        return 0

    if args.command == "run":
        scale = _scale(args.scale)
        assets = _assets(args.cache, args.scale)
        experiments = _experiments(scale, assets)
        fn = experiments.get(args.experiment)
        if fn is None:
            print(
                f"unknown experiment {args.experiment!r}; "
                f"known: {sorted(experiments)}",
                file=sys.stderr,
            )
            return 2
        print(fn())
        return 0

    if args.command == "report":
        scale = _scale(args.scale)
        assets = _assets(args.cache, args.scale)
        report = generate_report(assets, scale)
        with open(args.out, "w") as handle:
            handle.write(report)
        print(f"wrote {args.out}")
        return 0

    return 2


if __name__ == "__main__":
    raise SystemExit(main())
