"""Run metrics: temperature statistics, QoS violations, CPU-time histograms."""

from repro.metrics.summary import RunSummary, summarize_run
from repro.metrics.cputime import CpuTimeByVF, aggregate_cpu_time
from repro.metrics.timeline import AppTimeline, extract_timelines, render_run_timelines

__all__ = [
    "RunSummary",
    "summarize_run",
    "CpuTimeByVF",
    "aggregate_cpu_time",
    "AppTimeline",
    "extract_timelines",
    "render_run_timelines",
]
