"""Whole-run summary metrics.

Collects exactly the quantities the paper's figures report: time-averaged
and peak sensor temperature, the number and fraction of applications
violating their QoS targets, CPU time per VF level, migration counts,
system utilization, and the management overhead.

The summary is also the canonical source of the ``run_*`` gauges in the
observability metrics registry (:mod:`repro.obs.metrics`):
:func:`summary_metrics` maps a :class:`RunSummary` onto declared metric
names, and :func:`publish_summary` writes them into a registry — which is
how run manifests end up carrying exactly the numbers this module reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.metrics.cputime import CpuTimeByVF, aggregate_cpu_time
from repro.obs.metrics import MetricsRegistry
from repro.sim.kernel import Simulator
from repro.sim.process import ProcessState


@dataclass
class RunSummary:
    """Metrics of one completed run."""

    technique: str
    workload: str
    duration_s: float
    mean_temp_c: float
    peak_temp_c: float
    n_apps: int
    n_qos_violations: int
    violation_fraction: float
    mean_qos_met_fraction: float
    cpu_time_by_vf: CpuTimeByVF
    migrations: int
    dtm_throttle_events: int
    mean_utilization: float
    peak_utilization: float
    overhead_cpu_s: Dict[str, float] = field(default_factory=dict)
    violating_apps: List[str] = field(default_factory=list)

    @property
    def overhead_total_s(self) -> float:
        return sum(self.overhead_cpu_s.values())

    @property
    def overhead_fraction(self) -> float:
        """Manager CPU time as a fraction of one core's wall time."""
        if self.duration_s <= 0:
            return 0.0
        return self.overhead_total_s / self.duration_s


def _utilization_stats(sim: Simulator) -> tuple:
    """Mean/peak system utilization from per-process CPU time and the trace.

    Mean utilization is total process CPU time divided by (cores x run
    duration); peak is the max concurrent busy-core fraction observed in
    the trace samples.
    """
    duration_s = max(sim.now_s, 1e-9)
    total_cpu = sum(p.total_cpu_time_s for p in sim.all_processes())
    mean_util = total_cpu / (sim.platform.n_cores * duration_s)
    peak = 0.0
    for i in range(len(sim.trace.times)):
        busy_cores = set()
        for pid, series in sim.trace.process_cores.items():
            if i < len(series) and series[i] >= 0:
                busy_cores.add(series[i])
        peak = max(peak, len(busy_cores) / sim.platform.n_cores)
    return mean_util, peak


def summarize_run(sim: Simulator, technique_name: str, workload_name: str) -> RunSummary:
    """Build a :class:`RunSummary` from a finished simulation."""
    processes = sim.all_processes()
    finished = [p for p in processes if p.state is ProcessState.FINISHED]
    judged = finished if finished else processes
    violators = [
        p for p in judged if p.violated_qos(sim.now_s, sim.config.qos_tolerance)
    ]
    qos_met_fracs = [p.qos_met_fraction() for p in judged]
    mean_util, peak_util = _utilization_stats(sim)
    trace = sim.trace
    mean_temp = trace.mean_sensor_temp() if trace.times else sim.sensor_temp_c()
    peak_temp = trace.peak_sensor_temp() if trace.times else sim.sensor_temp_c()
    return RunSummary(
        technique=technique_name,
        workload=workload_name,
        duration_s=sim.now_s,
        mean_temp_c=mean_temp,
        peak_temp_c=peak_temp,
        n_apps=len(judged),
        n_qos_violations=len(violators),
        violation_fraction=len(violators) / max(1, len(judged)),
        mean_qos_met_fraction=float(np.mean(qos_met_fracs)) if qos_met_fracs else 1.0,
        cpu_time_by_vf=aggregate_cpu_time(processes),
        migrations=len(
            [m for m in trace.migrations if m.from_core is not None]
        ),
        dtm_throttle_events=sim.dtm_throttle_events,
        mean_utilization=mean_util,
        peak_utilization=peak_util,
        overhead_cpu_s=dict(sim.overhead_cpu_s),
        violating_apps=[p.app.name for p in violators],
    )


def summary_metrics(summary: RunSummary) -> Dict[str, float]:
    """The summary's headline numbers under their registry metric names.

    Every key is declared in :data:`repro.obs.metrics.METRIC_SPECS`; run
    manifests embed exactly this mapping, so a manifest's ``summary``
    section always agrees with what this module reports.
    """
    return {
        "run_mean_temp_c": summary.mean_temp_c,
        "run_peak_temp_c": summary.peak_temp_c,
        "run_qos_violations": float(summary.n_qos_violations),
        "run_violation_fraction": summary.violation_fraction,
        "run_migrations": float(summary.migrations),
        "run_mean_utilization": summary.mean_utilization,
    }


def publish_summary(
    summary: RunSummary, registry: MetricsRegistry
) -> Dict[str, float]:
    """Set the ``run_*`` gauges in ``registry``; returns the values set."""
    values = summary_metrics(summary)
    for name, value in values.items():
        registry.gauge(name).set(value)
    return values
