"""Timeline post-processing of run traces.

Extracts per-application QoS and mapping timelines from a
:class:`~repro.sim.trace.TraceRecorder`, the data behind the paper's
Fig. 7 time-series panels: which cluster each application occupied, when
its instantaneous QoS dipped, and how the temperature evolved alongside.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.platform import Platform
from repro.sim.trace import TraceRecorder
from repro.utils.plots import sparkline


@dataclass
class AppTimeline:
    """One application's run, resampled on the trace grid."""

    pid: int
    times_s: List[float]
    clusters: List[str]  # '' when not running
    ips: List[float]
    qos_target_ips: float

    @property
    def active_samples(self) -> int:
        return sum(1 for c in self.clusters if c)

    def cluster_residency(self) -> Dict[str, float]:
        """Fraction of active samples spent on each cluster."""
        active = [c for c in self.clusters if c]
        if not active:
            return {}
        return {
            name: active.count(name) / len(active) for name in set(active)
        }

    def qos_met_series(self, tolerance: float = 0.02) -> List[bool]:
        """Instantaneous QoS satisfaction per active sample."""
        threshold = self.qos_target_ips * (1.0 - tolerance)
        return [
            ips >= threshold
            for ips, cluster in zip(self.ips, self.clusters)
            if cluster
        ]

    def qos_met_fraction(self, tolerance: float = 0.02) -> float:
        series = self.qos_met_series(tolerance)
        if not series:
            return 1.0
        return sum(series) / len(series)

    def switches(self) -> int:
        """Number of cluster changes while running."""
        active = [c for c in self.clusters if c]
        return sum(1 for a, b in zip(active, active[1:]) if a != b)


def extract_timelines(
    trace: TraceRecorder,
    platform: Platform,
    qos_targets: Dict[int, float],
) -> Dict[int, AppTimeline]:
    """Build an :class:`AppTimeline` per pid present in the trace."""
    core_to_cluster = {c.core_id: c.cluster_name for c in platform.cores}
    timelines: Dict[int, AppTimeline] = {}
    for pid, cores in trace.process_cores.items():
        clusters = [core_to_cluster.get(c, "") if c >= 0 else "" for c in cores]
        ips = trace.process_ips.get(pid, [0.0] * len(cores))
        timelines[pid] = AppTimeline(
            pid=pid,
            times_s=list(trace.times[: len(cores)]),
            clusters=clusters,
            ips=list(ips),
            qos_target_ips=qos_targets.get(pid, 1.0),
        )
    return timelines


def render_run_timelines(
    trace: TraceRecorder,
    platform: Platform,
    qos_targets: Dict[int, float],
    width: int = 60,
) -> str:
    """A Fig.-7-style text panel: temperature plus per-app mapping rows."""
    lines = [
        f"temperature [{sparkline(trace.sensor_temp_c, width)}] "
        f"{min(trace.sensor_temp_c):.1f}-{max(trace.sensor_temp_c):.1f} C"
    ]
    timelines = extract_timelines(trace, platform, qos_targets)
    symbol = {"": ".", "LITTLE": "L", "big": "b"}
    for pid in sorted(timelines):
        timeline = timelines[pid]
        series = timeline.clusters
        stride = max(1, len(series) // width)
        sampled = series[::stride][:width]
        row = "".join(symbol.get(c, c[:1] or ".") for c in sampled)
        met = timeline.qos_met_fraction()
        lines.append(
            f"pid {pid:<3d}      [{row}] QoS met {100 * met:.0f} %"
        )
    return "\n".join(lines)
