"""CPU-time-per-VF-level accounting (the raw data behind Fig. 10).

The paper explains the main results by plotting, per technique, how much
total CPU time was spent on each cluster at each VF level.  Every process
records its execution time keyed by (cluster, frequency); this module
aggregates those ledgers across a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.platform import Platform
from repro.sim.process import Process


@dataclass
class CpuTimeByVF:
    """Total CPU seconds per (cluster name, frequency Hz)."""

    seconds: Dict[Tuple[str, float], float] = field(default_factory=dict)

    def add(self, cluster: str, frequency_hz: float, cpu_s: float) -> None:
        key = (cluster, frequency_hz)
        self.seconds[key] = self.seconds.get(key, 0.0) + cpu_s

    def merge(self, other: "CpuTimeByVF") -> "CpuTimeByVF":
        merged = CpuTimeByVF(seconds=dict(self.seconds))
        for key, value in other.seconds.items():
            merged.seconds[key] = merged.seconds.get(key, 0.0) + value
        return merged

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def cluster_total(self, cluster: str) -> float:
        return sum(v for (cl, _), v in self.seconds.items() if cl == cluster)

    def fraction(self, cluster: str, frequency_hz: float) -> float:
        """Share of total CPU time at this (cluster, frequency)."""
        total = self.total
        if total <= 0:
            return 0.0
        return self.seconds.get((cluster, frequency_hz), 0.0) / total

    def as_rows(self, platform: Platform) -> List[Tuple[str, float, float]]:
        """Sorted ``(cluster, frequency_hz, seconds)`` rows for reporting."""
        rows: List[Tuple[str, float, float]] = []
        for cluster in platform.clusters:
            for level in cluster.vf_table:
                cpu_s = self.seconds.get((cluster.name, level.frequency_hz), 0.0)
                rows.append((cluster.name, level.frequency_hz, cpu_s))
        return rows


def aggregate_cpu_time(processes: Iterable[Process]) -> CpuTimeByVF:
    """Merge the per-process CPU-time ledgers of a run."""
    result = CpuTimeByVF()
    for process in processes:
        for (cluster, freq), cpu_s in process.cpu_time_by_vf.items():
            result.add(cluster, freq, cpu_s)
    return result
