"""Per-block power computation: dynamic switching + temperature-aware leakage.

Model structure (standard CMOS first-order model, e.g. HotSpot tooling):

* **Dynamic power** per core: ``C_eff * V^2 * f * activity`` where ``C_eff``
  is the cluster's effective switched capacitance and ``activity`` in [0, 1]
  combines utilization (fraction of the interval the core ran) and the
  running application's switching-activity factor.
* **Idle power**: a clock-gated idle core burns a small fraction of its
  full-activity dynamic power.
* **Leakage power** per core: ``k_static * V^2 * (1 + k_T * (T - T_ref))``
  — leakage grows with supply voltage and with temperature, the feedback
  loop that makes sustained big-cluster operation disproportionately hot.
* **Uncore power** per cluster: a base cost plus a share proportional to
  the cluster's aggregate activity (interconnect, shared L2).
* **soc_rest**: a constant background power for the rest of the die (display
  pipeline, memory controller, rails), keeping idle temperature realistic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

import numpy as np

from repro.platform import Cluster, Platform, VFLevel
from repro.utils.hotpath import hot_path
from repro.utils.validation import check_in_range, check_non_negative


@dataclass
class PowerBreakdown:
    """Power per thermal block (W) with convenience totals."""

    per_block: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return sum(self.per_block.values())

    def core_power(self, core_id: int) -> float:
        return self.per_block.get(f"core{core_id}", 0.0)


class PowerModel:
    """Compute a :class:`PowerBreakdown` for the current platform state.

    Parameters
    ----------
    platform:
        The static platform description (provides cluster coefficients).
    leakage_temp_coeff:
        Fractional leakage increase per degree Celsius above ``leakage_ref_c``.
    uncore_base_w / uncore_activity_w:
        Per-cluster uncore power: constant part and the part scaled by the
        mean core activity of the cluster.
    soc_rest_w:
        Constant background power of the non-CPU silicon.
    """

    def __init__(
        self,
        platform: Platform,
        leakage_temp_coeff: float = 0.012,
        leakage_ref_c: float = 25.0,
        uncore_base_w: float = 0.05,
        uncore_activity_w: float = 0.25,
        soc_rest_w: float = 0.55,
    ) -> None:
        check_non_negative("leakage_temp_coeff", leakage_temp_coeff)
        check_non_negative("uncore_base_w", uncore_base_w)
        check_non_negative("uncore_activity_w", uncore_activity_w)
        check_non_negative("soc_rest_w", soc_rest_w)
        self.platform = platform
        self.leakage_temp_coeff = leakage_temp_coeff
        self.leakage_ref_c = leakage_ref_c
        self.uncore_base_w = uncore_base_w
        self.uncore_activity_w = uncore_activity_w
        self.soc_rest_w = soc_rest_w
        # Per-cluster core-id index arrays for the vectorized fast path.
        self._cluster_core_idx: List[Tuple[Cluster, np.ndarray]] = [
            (c, np.array(c.core_ids, dtype=np.intp)) for c in platform.clusters
        ]

    # --- per-core components ----------------------------------------------------
    def core_dynamic_power(
        self, core_id: int, vf: VFLevel, activity: float
    ) -> float:
        """Dynamic power of one core at ``vf`` with the given activity.

        ``activity`` = 0 means the core is idle (clock-gated, small residual
        switching); 1 means a fully active, high-switching workload.
        """
        check_in_range("activity", activity, 0.0, 1.0)
        cluster = self.platform.cluster_of_core(core_id)
        full = cluster.dyn_power_coeff * vf.voltage_v**2 * vf.frequency_hz
        idle = cluster.idle_power_fraction * full
        return idle + (full - idle) * activity

    def core_leakage_power(self, core_id: int, vf: VFLevel, temp_c: float) -> float:
        """Leakage power of one core at its current voltage and temperature."""
        cluster = self.platform.cluster_of_core(core_id)
        temp_factor = 1.0 + self.leakage_temp_coeff * max(
            0.0, temp_c - self.leakage_ref_c
        )
        return cluster.static_power_coeff * vf.voltage_v**2 * temp_factor

    # --- full breakdown -----------------------------------------------------------
    def compute(
        self,
        vf_levels: Mapping[str, VFLevel],
        core_activity: Mapping[int, float],
        core_temps_c: Mapping[int, float],
    ) -> PowerBreakdown:
        """Power per thermal block for the given operating state.

        Parameters
        ----------
        vf_levels:
            Current VF level per cluster name.
        core_activity:
            Activity in [0, 1] per core id; missing cores are treated idle.
        core_temps_c:
            Current temperature per core id, used for leakage feedback.
            Missing cores fall back to the platform ambient.
        """
        blocks: Dict[str, float] = {}
        cluster_activity_sum: Dict[str, float] = {
            c.name: 0.0 for c in self.platform.clusters
        }
        ambient = self.platform.ambient_temp_c
        for core in self.platform.cores:
            cluster = self.platform.cluster_of_core(core.core_id)
            vf = vf_levels[cluster.name]
            activity = float(core_activity.get(core.core_id, 0.0))
            temp = float(core_temps_c.get(core.core_id, ambient))
            power = self.core_dynamic_power(
                core.core_id, vf, activity
            ) + self.core_leakage_power(core.core_id, vf, temp)
            blocks[f"core{core.core_id}"] = power
            cluster_activity_sum[cluster.name] += activity

        for cluster in self.platform.clusters:
            mean_activity = cluster_activity_sum[cluster.name] / cluster.n_cores
            vf = vf_levels[cluster.name]
            # Uncore power scales with voltage squared like the cores do.
            v_scale = (vf.voltage_v / cluster.vf_table.max_level.voltage_v) ** 2
            blocks[f"uncore_{cluster.name}"] = v_scale * (
                self.uncore_base_w + self.uncore_activity_w * mean_activity
            )

        blocks["soc_rest"] = self.soc_rest_w
        return PowerBreakdown(per_block=blocks)

    @hot_path
    def compute_vector(
        self,
        vf_levels: Mapping[str, VFLevel],
        core_activity: np.ndarray,
        core_temps_c: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, float, float]:
        """Array-native :meth:`compute` for the simulation hot path.

        ``core_activity`` and ``core_temps_c`` are indexed by core id; the
        caller is responsible for clamping activity to [0, 1].  Returns
        ``(core_powers, uncore_powers, soc_rest_w, total_w)`` where
        ``core_powers`` is indexed by core id and ``uncore_powers`` follows
        ``platform.clusters`` order.  The per-block arithmetic is the same
        expression sequence as :meth:`compute`, so the two paths agree to
        the last bit per block.
        """
        core_powers = np.empty(self.platform.n_cores)
        uncore_powers = np.empty(len(self._cluster_core_idx))
        total = 0.0
        for k, (cluster, idx) in enumerate(self._cluster_core_idx):
            vf = vf_levels[cluster.name]
            v2 = vf.voltage_v**2
            full = cluster.dyn_power_coeff * v2 * vf.frequency_hz
            idle = cluster.idle_power_fraction * full
            activity = core_activity[idx]
            temp_factor = 1.0 + self.leakage_temp_coeff * np.maximum(
                0.0, core_temps_c[idx] - self.leakage_ref_c
            )
            power = (
                idle
                + (full - idle) * activity
                + (cluster.static_power_coeff * v2) * temp_factor
            )
            core_powers[idx] = power
            mean_activity = float(activity.sum()) / cluster.n_cores
            v_scale = (vf.voltage_v / cluster.vf_table.max_level.voltage_v) ** 2
            uncore_powers[k] = v_scale * (
                self.uncore_base_w + self.uncore_activity_w * mean_activity
            )
            total += float(power.sum())
        total += float(uncore_powers.sum()) + self.soc_rest_w
        return core_powers, uncore_powers, self.soc_rest_w, total

    @hot_path
    def compute_batch(
        self,
        cluster_voltage_v: np.ndarray,
        cluster_frequency_hz: np.ndarray,
        core_activity: np.ndarray,
        core_temps_c: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, float, np.ndarray]:
        """Batched :meth:`compute_vector` over N cells sharing this platform.

        ``cluster_voltage_v`` / ``cluster_frequency_hz`` are ``(clusters, N)``
        arrays in ``platform.clusters`` order (each cell may sit at its own
        VF level); ``core_activity`` / ``core_temps_c`` are ``(N, cores)``
        indexed by core id.  Returns ``(core_powers, uncore_powers,
        soc_rest_w, total_w)`` with per-cell leading axes.  Every row is
        computed with the same elementwise expression sequence as
        :meth:`compute_vector`, so row ``i`` is bitwise identical to the
        scalar call for cell ``i`` — the contract the batched simulation
        backend's golden-trace equivalence rests on.
        """
        n_cells = core_activity.shape[0]
        core_powers = np.empty((n_cells, self.platform.n_cores))
        uncore_powers = np.empty((n_cells, len(self._cluster_core_idx)))
        total = np.zeros(n_cells)
        for k, (cluster, idx) in enumerate(self._cluster_core_idx):
            v = cluster_voltage_v[k]
            v2 = v**2
            full = cluster.dyn_power_coeff * v2 * cluster_frequency_hz[k]
            idle = cluster.idle_power_fraction * full
            activity = core_activity[:, idx]
            temp_factor = 1.0 + self.leakage_temp_coeff * np.maximum(
                0.0, core_temps_c[:, idx] - self.leakage_ref_c
            )
            power = (
                idle[:, None]
                + (full - idle)[:, None] * activity
                + (cluster.static_power_coeff * v2)[:, None] * temp_factor
            )
            core_powers[:, idx] = power
            mean_activity = activity.sum(axis=1) / cluster.n_cores
            v_scale = (v / cluster.vf_table.max_level.voltage_v) ** 2
            uncore_powers[:, k] = v_scale * (
                self.uncore_base_w + self.uncore_activity_w * mean_activity
            )
            total += power.sum(axis=1)
        total += uncore_powers.sum(axis=1) + self.soc_rest_w
        return core_powers, uncore_powers, self.soc_rest_w, total
