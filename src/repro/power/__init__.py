"""Power models for the simulated SoC.

The paper's board exposes **no power sensors**; power exists in this
reproduction purely as the input to the thermal substrate.  Policies never
read it, matching the paper's constraint ("Lim. Power Sensors" column of
Table 1).
"""

from repro.power.model import PowerModel, PowerBreakdown

__all__ = ["PowerModel", "PowerBreakdown"]
