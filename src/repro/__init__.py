"""repro — reproduction of "NPU-Accelerated Imitation Learning for Thermal
Optimization of QoS-Constrained Heterogeneous Multi-Cores" (Rapp et al.).

The package provides:

* a full simulation substrate for the paper's HiKey 970 platform
  (:mod:`repro.platform`, :mod:`repro.power`, :mod:`repro.thermal`,
  :mod:`repro.apps`, :mod:`repro.sim`),
* the paper's contribution TOP-IL (:mod:`repro.il`, :mod:`repro.nn`,
  :mod:`repro.npu`),
* the baselines: TOP-RL (:mod:`repro.rl`) and Linux GTS with ondemand /
  powersave governors (:mod:`repro.governors`),
* workload generation and metrics (:mod:`repro.workloads`,
  :mod:`repro.metrics`), and
* one experiment runner per figure/table of the paper's evaluation
  (:mod:`repro.experiments`).

Quickstart::

    from repro.platform import hikey970
    from repro.il import ILPipeline, PipelineConfig, TopIL
    from repro.workloads import mixed_workload, run_workload

    platform = hikey970()
    result = ILPipeline(platform, config=PipelineConfig(n_scenarios=10)).run()
    workload = mixed_workload(platform, n_apps=6, instruction_scale=0.02)
    run = run_workload(platform, TopIL(result.models[0]), workload)
    print(run.summary.mean_temp_c, run.summary.n_qos_violations)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
