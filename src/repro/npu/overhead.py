"""Management run-time overhead model (Fig. 12).

The paper's single-threaded manager binary pays, per invocation:

* **DVFS control loop** (every 50 ms): a fixed cost plus a per-application
  cost for reading performance counters — the component that scales with
  the number of running applications (worst case 0.54 ms/invocation,
  8.7 ms/s at 16 Hz);
* **migration policy** (every 500 ms): feature collection per application
  plus one batched NN inference — nearly constant thanks to the NPU
  (worst case 4.3 ms/invocation, 8.6 ms/s at 2 Hz).
"""

from __future__ import annotations

from typing import Optional

from repro.nn.layers import Sequential
from repro.npu.latency import CPUInferenceLatency, NPUInferenceLatency
from repro.utils.validation import check_non_negative


class ManagementOverheadModel:
    """CPU-time cost of one manager invocation, by component."""

    def __init__(
        self,
        dvfs_base_s: float = 0.19e-3,
        dvfs_per_app_s: float = 0.031e-3,
        migration_base_s: float = 1.4e-3,
        migration_per_app_s: float = 0.15e-3,
        inference: Optional[object] = None,
        cpu_inference: Optional[object] = None,
    ):
        check_non_negative("dvfs_base_s", dvfs_base_s)
        check_non_negative("dvfs_per_app_s", dvfs_per_app_s)
        check_non_negative("migration_base_s", migration_base_s)
        check_non_negative("migration_per_app_s", migration_per_app_s)
        self.dvfs_base_s = dvfs_base_s
        self.dvfs_per_app_s = dvfs_per_app_s
        self.migration_base_s = migration_base_s
        self.migration_per_app_s = migration_per_app_s
        self.inference = inference or NPUInferenceLatency()
        # Fallback surface for the degradation path: same model, run on
        # the manager's CPU core when the NPU is unavailable.
        self.cpu_inference = cpu_inference or CPUInferenceLatency()

    def dvfs_invocation_s(self, n_apps: int) -> float:
        """Cost of one DVFS-loop invocation with ``n_apps`` running."""
        if n_apps < 0:
            raise ValueError("n_apps must be >= 0")
        return self.dvfs_base_s + self.dvfs_per_app_s * n_apps

    def migration_invocation_s(self, n_apps: int, model: Sequential) -> float:
        """Cost of one migration-policy invocation (incl. inference)."""
        if n_apps < 0:
            raise ValueError("n_apps must be >= 0")
        if n_apps == 0:
            return self.migration_base_s
        return (
            self.migration_base_s
            + self.migration_per_app_s * n_apps
            + self.inference.latency_s(n_apps, model)
        )

    def migration_invocation_cpu_s(self, n_apps: int, model: Sequential) -> float:
        """Cost of one migration-policy invocation with CPU inference.

        The graceful-degradation path: when the NPU is unavailable the
        manager runs the same batched inference serially on its own core,
        paying the per-sample CPU latency instead of the ~flat NPU call.
        """
        if n_apps < 0:
            raise ValueError("n_apps must be >= 0")
        if n_apps == 0:
            return self.migration_base_s
        return (
            self.migration_base_s
            + self.migration_per_app_s * n_apps
            + self.cpu_inference.latency_s(n_apps, model)
        )
