"""Inference-latency models: NPU (batched) vs. CPU (serial).

Numerical inference itself is executed exactly (numpy) by the policy; these
models answer "how long would this call have taken on the board", which
drives the overhead accounting of Fig. 12.

Calibration: the paper reports 4.3 ms per migration-policy invocation
(dominated by the non-blocking HiAI call and feature collection) with the
latency "barely changing" with the number of applications.  A CPU inference
of the same model on the A53, by contrast, pays a per-sample cost, so its
invocation latency grows linearly with the application count.
"""

from __future__ import annotations

from repro.nn.layers import Sequential
from repro.utils.validation import check_non_negative, check_positive


def model_flops(model: Sequential) -> int:
    """Multiply-accumulate count of one forward pass (batch size 1)."""
    total = 0
    for _, value, _ in model.params():
        if value.ndim == 2:
            total += 2 * value.shape[0] * value.shape[1]
        else:
            total += value.shape[0]
    return total


class NPUInferenceLatency:
    """Batched inference on the NPU: latency ~ constant in the batch size.

    ``setup_s`` covers the driver round trip (DDK call, DMA of the feature
    batch); ``per_wave_s`` the compute of one hardware wave; batches up to
    ``wave_size`` samples execute as one wave.
    """

    def __init__(
        self,
        setup_s: float = 1.7e-3,
        per_wave_s: float = 0.3e-3,
        wave_size: int = 16,
        timeout_budget_s: float = 25e-3,
    ):
        check_non_negative("setup_s", setup_s)
        check_non_negative("per_wave_s", per_wave_s)
        check_positive("wave_size", wave_size)
        check_positive("timeout_budget_s", timeout_budget_s)
        self.setup_s = setup_s
        self.per_wave_s = per_wave_s
        self.wave_size = wave_size
        self.timeout_budget_s = timeout_budget_s

    def latency_s(self, batch_size: int, model: Sequential) -> float:
        """Latency of one batched inference call."""
        if batch_size <= 0:
            return 0.0
        waves = -(-batch_size // self.wave_size)  # ceil division
        return self.setup_s + waves * self.per_wave_s

    def failed_call_s(self) -> float:
        """Wasted time of a call the driver rejects immediately: the
        round trip happens, the compute does not."""
        return self.setup_s

    def timed_out_call_s(self) -> float:
        """Wasted time of a hung call: the manager waits out the full
        watchdog budget before declaring the NPU unavailable."""
        return self.timeout_budget_s


class CPUInferenceLatency:
    """Serial inference on a CPU core: latency grows with the batch.

    ``per_sample_base_s`` models framework overhead per sample;
    ``flops_per_s`` the effective throughput of the core for tiny GEMVs
    (far below peak because the matrices do not amortize call overhead).
    """

    def __init__(
        self,
        setup_s: float = 0.3e-3,
        per_sample_base_s: float = 1.1e-3,
        flops_per_s: float = 2.0e9,
    ):
        check_non_negative("setup_s", setup_s)
        check_non_negative("per_sample_base_s", per_sample_base_s)
        check_positive("flops_per_s", flops_per_s)
        self.setup_s = setup_s
        self.per_sample_base_s = per_sample_base_s
        self.flops_per_s = flops_per_s

    def latency_s(self, batch_size: int, model: Sequential) -> float:
        if batch_size <= 0:
            return 0.0
        per_sample = self.per_sample_base_s + model_flops(model) / self.flops_per_s
        return self.setup_s + batch_size * per_sample
