"""NPU acceleration model and management-overhead accounting.

The HiKey 970's NPU (accessed via the HiAI DDK) performs one *batched*
inference for all running applications in a single call: its parallelism
makes the latency essentially independent of the batch size, which is why
the paper's migration policy has a constant overhead regardless of how many
applications run (Fig. 12).  A CPU-inference comparator quantifies what the
NPU buys.
"""

from repro.npu.latency import CPUInferenceLatency, NPUInferenceLatency
from repro.npu.overhead import ManagementOverheadModel

__all__ = [
    "NPUInferenceLatency",
    "CPUInferenceLatency",
    "ManagementOverheadModel",
]
