"""Resource-management techniques: Linux baselines and the paper's DVFS loop.

A :class:`Technique` bundles everything one management approach installs on
the simulator: a placement policy for arrivals, DVFS governors, schedulers,
and migration policies.  The four techniques of the paper's evaluation are

* ``GTS/ondemand`` — Linux Global Task Scheduling + the ondemand governor
  (the Android 8.0 default on the HiKey 970),
* ``GTS/powersave`` — GTS + the powersave governor,
* ``TOP-IL`` — the paper's contribution (:mod:`repro.il`), and
* ``TOP-RL`` — the RL baseline (:mod:`repro.rl`),

where both TOP variants use the per-cluster QoS DVFS control loop
implemented in :mod:`repro.governors.qos_dvfs`.
"""

from repro.governors.base import Technique
from repro.governors.linux import OndemandGovernor, PowersaveGovernor, PerformanceGovernor
from repro.governors.gts import GTSScheduler
from repro.governors.qos_dvfs import QoSDVFSControlLoop, estimate_min_level
from repro.governors.techniques import GTSOndemand, GTSPowersave
from repro.governors.oracle import OracleStaticMapping

__all__ = [
    "Technique",
    "OndemandGovernor",
    "PowersaveGovernor",
    "PerformanceGovernor",
    "GTSScheduler",
    "QoSDVFSControlLoop",
    "estimate_min_level",
    "GTSOndemand",
    "GTSPowersave",
    "OracleStaticMapping",
]
