"""Global Task Scheduling (GTS) — the Arm/Linaro big.LITTLE scheduler.

GTS tracks per-task load and migrates performance-hungry tasks to the big
cluster and mostly-idle tasks to the LITTLE cluster.  The evaluation's
benchmark processes are always CPU-hungry, so GTS "favors the big cluster"
(Sec. 7.2): arrivals go to free big cores first, spill onto free LITTLE
cores, and only then share cores.  A periodic balance pass up-migrates
tasks from LITTLE when big cores free up and spreads tasks off crowded
cores, which is what lets GTS/powersave occupy both clusters once the low
VF level slows everything down and applications pile up.
"""

from __future__ import annotations

from typing import List, Optional

from repro.platform.hikey import BIG, LITTLE
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.utils.validation import check_positive


class GTSScheduler:
    """Load-based placement + periodic up-migration and spreading."""

    def __init__(self, balance_period_s: float = 0.2, busy_load_threshold: float = 0.5):
        check_positive("balance_period_s", balance_period_s)
        self.balance_period_s = balance_period_s
        self.busy_load_threshold = busy_load_threshold

    # --- placement of arrivals ----------------------------------------------------
    def place(self, sim: Simulator, process: Process) -> int:
        """Free big core, else free LITTLE core, else least-loaded big core."""
        for cluster_name in (BIG, LITTLE):
            free = [
                c
                for c in sim.platform.cores_in_cluster(cluster_name)
                if not sim.processes_on_core(c)
            ]
            if free:
                return free[0]
        loads = [
            (len(sim.processes_on_core(c)), c)
            for c in sim.platform.cores_in_cluster(BIG)
        ]
        loads.sort()
        return loads[0][1]

    # --- periodic balancing -----------------------------------------------------------
    def _pick_migratable(self, sim: Simulator, core: int) -> Optional[Process]:
        procs = sim.processes_on_core(core)
        if not procs:
            return None
        # Prefer the task that has been on the core longest (stable choice).
        return min(procs, key=lambda p: p.pid)

    def balance(self, sim: Simulator) -> None:
        """One GTS balance pass: up-migrate, then spread crowded cores."""
        # 1. Up-migration: busy tasks on LITTLE move to free big cores.
        free_big: List[int] = [
            c for c in sim.platform.cores_in_cluster(BIG) if not sim.processes_on_core(c)
        ]
        for core in sim.platform.cores_in_cluster(LITTLE):
            if not free_big:
                break
            proc = self._pick_migratable(sim, core)
            if proc is None:
                continue
            sim.migrate(proc.pid, free_big.pop(0))
        # 2. Spreading: move tasks from crowded cores to any free core,
        #    preferring big targets (all tasks are performance-hungry).
        free_cores = [
            c
            for c in sim.platform.cores_in_cluster(BIG)
            + sim.platform.cores_in_cluster(LITTLE)
            if not sim.processes_on_core(c)
        ]
        crowded = sorted(
            (c for c in range(sim.platform.n_cores) if len(sim.processes_on_core(c)) > 1),
            key=lambda c: -len(sim.processes_on_core(c)),
        )
        for core in crowded:
            while len(sim.processes_on_core(core)) > 1 and free_cores:
                target = free_cores.pop(0)
                proc = self._pick_migratable(sim, core)
                sim.migrate(proc.pid, target)

    def attach(self, sim: Simulator, name: str = "gts") -> None:
        sim.placement_policy = self.place
        sim.add_controller(name, self.balance_period_s, self.balance)
