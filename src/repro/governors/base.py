"""The Technique abstraction: one complete resource-management approach."""

from __future__ import annotations

import abc

from repro.sim.kernel import Simulator


class Technique(abc.ABC):
    """A complete management approach installable on a simulator.

    A technique may register controllers (periodic callbacks), replace the
    arrival placement policy, and keep internal state.  Techniques are
    single-use: construct a fresh instance per run so no state leaks
    between experiments.
    """

    #: Identifier used in experiment reports ("TOP-IL", "GTS/ondemand", ...).
    name: str = "technique"

    @abc.abstractmethod
    def attach(self, sim: Simulator) -> None:
        """Install this technique's controllers and policies on ``sim``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
