"""The Linux baseline techniques: GTS paired with ondemand / powersave."""

from __future__ import annotations

from repro.governors.base import Technique
from repro.governors.gts import GTSScheduler
from repro.governors.linux import OndemandGovernor, PowersaveGovernor
from repro.sim.kernel import Simulator


class GTSOndemand(Technique):
    """GTS scheduling + ondemand DVFS — the Android 8.0 default."""

    name = "GTS/ondemand"

    def __init__(self):
        self.scheduler = GTSScheduler()
        self.governor = OndemandGovernor()

    def attach(self, sim: Simulator) -> None:
        self.scheduler.attach(sim)
        self.governor.attach(sim)


class GTSPowersave(Technique):
    """GTS scheduling + powersave DVFS — minimum power, QoS-oblivious."""

    name = "GTS/powersave"

    def __init__(self):
        self.scheduler = GTSScheduler()
        self.governor = PowersaveGovernor()

    def attach(self, sim: Simulator) -> None:
        self.scheduler.attach(sim)
        self.governor.attach(sim)
