"""Oracle static-mapping baseline (upper bound for migration policies).

The paper's oracle exists only at design time (it labels the training
data).  For *evaluation* it is useful to have a run-time upper bound: a
privileged policy that uses the application models, the power model, and a
thermal steady-state solve — information no real resource manager has — to
place every application on the core that minimizes the predicted hottest
zone temperature while meeting all QoS targets.

Comparing TOP-IL against this oracle quantifies the policy's optimality
gap (the run-time analogue of the Sec. 7.4 model evaluation).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.governors.base import Technique
from repro.governors.qos_dvfs import QoSDVFSControlLoop
from repro.platform import Platform, VFLevel
from repro.power import PowerModel
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.thermal import RCThermalNetwork


class OracleStaticMapping(Technique):
    """Privileged placement: minimize predicted steady-state zone temp.

    For every candidate core the oracle computes the per-cluster VF levels
    required to satisfy every running application's QoS target (using the
    *true* application models), evaluates the power model at that operating
    point, solves the thermal steady state, and takes the max over the
    observable zones.  The coolest feasible candidate wins.  Placement is
    static (applications are not migrated afterwards) and the standard QoS
    DVFS loop controls the VF levels at run time.
    """

    name = "Oracle(static)"

    def __init__(self, dvfs_period_s: float = 0.05):
        self.dvfs_loop = QoSDVFSControlLoop(period_s=dvfs_period_s)
        self._reference_thermal: Optional[RCThermalNetwork] = None

    # ------------------------------------------------------------- prediction
    def _required_levels(
        self, sim: Simulator, assignments: Dict[int, int]
    ) -> Optional[Dict[str, VFLevel]]:
        """Min per-cluster levels meeting every app's target, or None."""
        platform = sim.platform
        levels: Dict[str, VFLevel] = {
            c.name: c.vf_table.min_level for c in platform.clusters
        }
        for pid, core in assignments.items():
            process = sim.process(pid)
            cluster = platform.cluster_of_core(core)
            level = process.app.min_frequency_for(
                cluster.name,
                cluster.vf_table,
                process.qos_target_ips,
                process.instructions_done,
            )
            if level is None:
                return None
            if level.frequency_hz > levels[cluster.name].frequency_hz:
                levels[cluster.name] = level
        return levels

    def predicted_zone_temp(
        self, sim: Simulator, assignments: Dict[int, int]
    ) -> Optional[float]:
        """Predicted steady-state max zone temperature for an assignment."""
        levels = self._required_levels(sim, assignments)
        if levels is None:
            return None
        platform = sim.platform
        activity: Dict[int, float] = {}
        for pid, core in assignments.items():
            process = sim.process(pid)
            cluster = platform.cluster_of_core(core)
            params, _ = process.app.params_at(
                cluster.name, process.instructions_done
            )
            activity[core] = min(1.0, activity.get(core, 0.0) + params.activity)
        temps = {c: platform.ambient_temp_c + 15.0 for c in range(platform.n_cores)}
        breakdown = sim.power_model.compute(levels, activity, temps)
        steady = sim.thermal.steady_state(breakdown.per_block)
        zones = [
            t
            for name, t in steady.items()
            if name.startswith("uncore") or name == "soc_rest"
        ]
        return max(zones) if zones else max(steady.values())

    # ------------------------------------------------------------- placement
    def place(self, sim: Simulator, process: Process) -> int:
        current = {p.pid: p.core_id for p in sim.running_processes()}
        best_core: Optional[int] = None
        best_temp = float("inf")
        fallback: Optional[int] = None
        for core in range(sim.platform.n_cores):
            if sim.processes_on_core(core):
                continue
            assignments = dict(current)
            assignments[process.pid] = core
            temp = self.predicted_zone_temp(sim, assignments)
            if fallback is None:
                fallback = core
            if temp is not None and temp < best_temp:
                best_temp = temp
                best_core = core
        if best_core is not None:
            return best_core
        if fallback is not None:
            return fallback
        # No free core: share the least-loaded one.
        loads = [
            (len(sim.processes_on_core(c)), c)
            for c in range(sim.platform.n_cores)
        ]
        loads.sort()
        return loads[0][1]

    def attach(self, sim: Simulator) -> None:
        sim.placement_policy = self.place
        self.dvfs_loop.attach(sim)
