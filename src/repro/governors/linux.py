"""Linux cpufreq governors: ondemand, powersave, performance.

These are the state-of-the-practice DVFS baselines of the evaluation.  They
are QoS- and temperature-oblivious: *ondemand* scales VF levels with CPU
utilization (up aggressively, down gradually, like the Linux governor),
*powersave* pins the lowest VF level, *performance* pins the highest.
"""

from __future__ import annotations

from repro.sim.kernel import Simulator
from repro.utils.validation import check_in_range, check_positive


class PowersaveGovernor:
    """Always select the lowest VF level on every cluster."""

    period_s = 0.1

    def __call__(self, sim: Simulator) -> None:
        for cluster in sim.platform.clusters:
            sim.set_vf_level(cluster.name, cluster.vf_table.min_level)

    def attach(self, sim: Simulator, name: str = "powersave") -> None:
        self(sim)  # take effect immediately, then periodically re-assert
        sim.add_controller(name, self.period_s, self)


class PerformanceGovernor:
    """Always select the highest VF level on every cluster."""

    period_s = 0.1

    def __call__(self, sim: Simulator) -> None:
        for cluster in sim.platform.clusters:
            sim.set_vf_level(cluster.name, cluster.vf_table.max_level)

    def attach(self, sim: Simulator, name: str = "performance") -> None:
        self(sim)
        sim.add_controller(name, self.period_s, self)


class OndemandGovernor:
    """Utilization-driven DVFS like the Linux ondemand governor.

    Every sampling period the governor inspects the cluster utilization
    (the max over its cores, as cpufreq policies do).  Above
    ``up_threshold`` it jumps straight to the highest VF level; below
    ``down_threshold`` it steps down one level; in between it holds.
    With the always-busy benchmark processes of the evaluation this yields
    the paper's observed behaviour: "ondemand selects high frequencies when
    applications are executed".
    """

    def __init__(
        self,
        sampling_period_s: float = 0.1,
        up_threshold: float = 0.80,
        down_threshold: float = 0.20,
    ):
        check_positive("sampling_period_s", sampling_period_s)
        check_in_range("up_threshold", up_threshold, 0.0, 1.0)
        check_in_range("down_threshold", down_threshold, 0.0, up_threshold)
        self.sampling_period_s = sampling_period_s
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold

    def cluster_utilization(self, sim: Simulator, cluster_name: str) -> float:
        cores = sim.platform.cores_in_cluster(cluster_name)
        return max(sim.core_utilization(c) for c in cores)

    def __call__(self, sim: Simulator) -> None:
        for cluster in sim.platform.clusters:
            util = self.cluster_utilization(sim, cluster.name)
            current = sim.vf_level(cluster.name)
            if util >= self.up_threshold:
                sim.set_vf_level(cluster.name, cluster.vf_table.max_level)
            elif util <= self.down_threshold:
                sim.set_vf_level(
                    cluster.name, cluster.vf_table.step_down(current)
                )

    def attach(self, sim: Simulator, name: str = "ondemand") -> None:
        sim.add_controller(name, self.sampling_period_s, self)
