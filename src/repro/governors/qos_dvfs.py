"""The paper's per-cluster QoS DVFS control loop (Sec. 5.2).

Every 50 ms the loop estimates, per application ``k``, the minimum VF level
that satisfies its QoS target by linear scaling from the current reading
(Eq. 1)::

    f_k_min = min { f in F_x(k) : q_k * f / f_x(k) >= Q_k }

takes the per-cluster maximum over the applications mapped to it (Eq. 5),
and moves each cluster's VF level **one step** towards that target — the
linear estimate is only trustworthy for small changes.  Idle clusters run
at the lowest level.  Two iterations are skipped around each application
migration (the one in the migration epoch and the one right after) so the
cold-cache transient does not masquerade as a QoS violation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.platform.vf import VFLevel, VFTable
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.utils.validation import check_positive

if TYPE_CHECKING:
    from repro.npu.overhead import ManagementOverheadModel


def estimate_min_level(
    current_ips: float,
    current_freq_hz: float,
    qos_target_ips: float,
    vf_table: VFTable,
) -> VFLevel:
    """Eq. 1: lowest level whose linearly-scaled IPS reaches the target.

    Falls back to the highest level when even it is predicted too slow —
    the loop can do no better than run flat out.
    """
    check_positive("current_freq_hz", current_freq_hz)
    if current_ips <= 0.0:
        # No reading yet (e.g. right after arrival): be conservative.
        return vf_table.max_level
    required = qos_target_ips * current_freq_hz / current_ips
    return vf_table.clamp(required)


class QoSDVFSControlLoop:
    """The 50 ms control loop shared by TOP-IL and TOP-RL."""

    def __init__(self, period_s: float = 0.05, skip_iterations_after_migration: int = 2):
        check_positive("period_s", period_s)
        if skip_iterations_after_migration < 0:
            raise ValueError("skip_iterations_after_migration must be >= 0")
        self.period_s = period_s
        self.skip_iterations = skip_iterations_after_migration
        self._skips_remaining = 0
        self.invocations = 0
        self.skipped = 0
        self.dropout_holds = 0

    def notify_migration(self) -> None:
        """Called by the migration policy when it executes a migration."""
        self._skips_remaining = self.skip_iterations

    def required_level(
        self, sim: Simulator, process: Process
    ) -> Optional[VFLevel]:
        """Eq. 1 for one process, or None when it is not running."""
        if not process.is_running():
            return None
        cluster = sim.platform.cluster_of_core(process.core_id)
        return estimate_min_level(
            current_ips=process.smoothed_ips,
            current_freq_hz=sim.vf_level(cluster.name).frequency_hz,
            qos_target_ips=process.qos_target_ips,
            vf_table=cluster.vf_table,
        )

    def __call__(self, sim: Simulator) -> None:
        self.invocations += 1
        if self._skips_remaining > 0:
            self._skips_remaining -= 1
            self.skipped += 1
            # Observability: post-migration skips are exactly the intervals
            # an operator needs to see when diagnosing QoS dips around
            # migrations (docs/observability.md).
            if sim.obs is not None:
                sim.obs.on_dvfs_skip(sim)
            return
        if sim.faults is not None and sim.faults.sensor_dropout_active(
            sim.now_s
        ):
            # Graceful degradation: during a sensor dropout the loop's
            # thermal context is stale (the sensor serves its last-valid
            # EMA reading), so hold the previous VF decision instead of
            # re-actuating on the held value — exactly what the board's
            # manager does when a hwmon read fails.
            self.dropout_holds += 1
            sim.faults.count("qos_dvfs.hold")
            return
        for cluster in sim.platform.clusters:
            procs = [
                p
                for p in sim.running_processes()
                if sim.platform.cluster_of_core(p.core_id).name == cluster.name
            ]
            if not procs:
                # Idle clusters are operated at the lowest VF level.
                sim.set_vf_level(cluster.name, cluster.vf_table.min_level)
                continue
            targets = [self.required_level(sim, p) for p in procs]
            target = max(
                (t for t in targets if t is not None),
                key=lambda lv: lv.frequency_hz,
                default=cluster.vf_table.min_level,
            )
            current = sim.vf_level(cluster.name)
            sim.set_vf_level(
                cluster.name, cluster.vf_table.step_towards(current, target)
            )

    def attach(self, sim: Simulator, name: str = "qos-dvfs") -> None:
        """Register the loop as the periodic controller ``name``.

        The controller name is also the label under which the kernel's
        observability layer records this loop's invocation counts, latency
        histogram, and Chrome-trace spans.
        """
        sim.add_controller(name, self.period_s, self)


class ChargedDVFSCallback:
    """The DVFS loop wrapped with its own management-overhead charge.

    TOP-IL and TOP-RL charge the loop's counter-reading cost on the
    manager core before every invocation.  This is a module-level class
    (not a closure inside ``attach``) so a `Simulator` carrying it stays
    picklable — checkpoint/restore snapshots the controller callbacks by
    pickling them.
    """

    def __init__(
        self, loop: QoSDVFSControlLoop, overhead_model: "ManagementOverheadModel"
    ):
        self.loop = loop
        self.overhead_model = overhead_model

    def __call__(self, sim: Simulator) -> None:
        sim.account_overhead(
            "dvfs",
            self.overhead_model.dvfs_invocation_s(len(sim.running_processes())),
        )
        self.loop(sim)
