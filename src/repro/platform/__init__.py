"""Platform descriptions: clusters, cores, VF tables, floorplans, DTM.

This package models the *static* hardware description of a heterogeneous
clustered multi-core — the information a resource manager can know at
design time.  Two layers:

* the imperative :class:`Platform` (:mod:`repro.platform.description`)
  that the simulator substrate consumes, and
* the declarative :class:`PlatformSpec` (:mod:`repro.platform.spec`) —
  plain-data SoC descriptions validated and named by the registry
  (:mod:`repro.platform.registry`).

The registry ships three stock platforms (:mod:`repro.platform.zoo`):
the paper's HiKey 970 board (``hikey970``), a flagship-phone tri-cluster
SoC (``tricluster``), and an NPU-less many-core grid (``snuca-grid``).
``repro.cli platform list`` enumerates them; ``docs/platforms.md`` is the
authoring guide for adding more.
"""

from repro.platform.vf import VFLevel, VFTable
from repro.platform.description import Cluster, Core, FloorplanTile, Platform, DTMConfig
from repro.platform.hikey import hikey970
from repro.platform.spec import (
    ClusterSpec,
    CoolingSpec,
    DTMSpec,
    NPUSpec,
    PlatformSpec,
    PlatformSpecError,
    ThermalSpec,
    TileSpec,
)
from repro.platform.registry import (
    get_platform,
    get_spec,
    platform_names,
    register_platform,
    spec_for_platform,
)

__all__ = [
    "VFLevel",
    "VFTable",
    "Cluster",
    "Core",
    "FloorplanTile",
    "Platform",
    "DTMConfig",
    "hikey970",
    "ClusterSpec",
    "CoolingSpec",
    "DTMSpec",
    "NPUSpec",
    "PlatformSpec",
    "PlatformSpecError",
    "ThermalSpec",
    "TileSpec",
    "get_platform",
    "get_spec",
    "platform_names",
    "register_platform",
    "spec_for_platform",
]
