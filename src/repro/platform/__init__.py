"""Platform description: clusters, cores, VF tables, floorplan, DTM.

This package models the *static* hardware description of a heterogeneous
clustered multi-core — the information a resource manager can know at design
time.  The reproduction ships a faithful description of the HiKey 970 board
used in the paper (:func:`repro.platform.hikey.hikey970`): an Arm big.LITTLE
SoC with four Cortex-A53 (LITTLE) and four Cortex-A73 (big) cores,
per-cluster DVFS, and a single on-chip temperature sensor.
"""

from repro.platform.vf import VFLevel, VFTable
from repro.platform.description import Cluster, Core, FloorplanTile, Platform, DTMConfig
from repro.platform.hikey import hikey970

__all__ = [
    "VFLevel",
    "VFTable",
    "Cluster",
    "Core",
    "FloorplanTile",
    "Platform",
    "DTMConfig",
    "hikey970",
]
