"""Platform registry: named, validated :class:`PlatformSpec` lookup.

The registry maps a platform name to its declarative spec.  Registration
validates eagerly (:meth:`PlatformSpec.validate`), so every registered
platform is guaranteed to build and simulate; the platform-registry
contract test additionally runs each entry under the sanitizer.

The stock entries (:mod:`repro.platform.zoo`) are registered at import
time; library users add their own with :func:`register_platform` — see
``docs/platforms.md`` for a worked example.  Lookup is read-only after
import, so forked experiment workers see a consistent registry without
synchronization.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.platform.description import Platform
from repro.platform.spec import PlatformSpec
from repro.platform.zoo import builtin_specs

_REGISTRY: Dict[str, PlatformSpec] = {}


def register_platform(spec: PlatformSpec, replace: bool = False) -> PlatformSpec:
    """Validate ``spec`` and add it to the registry under ``spec.name``.

    Re-registering an existing name raises unless ``replace=True`` (a
    silent overwrite would let two call sites disagree about what a
    platform name means while the artifact store fingerprints them
    identically).  Returns the spec for chaining.
    """
    spec.validate()
    if spec.name in _REGISTRY and not replace:
        raise ValueError(
            f"platform {spec.name!r} is already registered; "
            "pass replace=True to overwrite"
        )
    _REGISTRY[spec.name] = spec
    return spec


def platform_names() -> List[str]:
    """Registered platform names, sorted."""
    return sorted(_REGISTRY)


def get_spec(name: str) -> PlatformSpec:
    """The registered spec called ``name`` (KeyError with the known set)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown platform {name!r}; registered: {platform_names()}"
        ) from None


def get_platform(name: str) -> Platform:
    """Build a fresh :class:`Platform` from the registered spec ``name``.

    Each call constructs a new object; callers that rely on object
    identity (the batch backend groups simulators by ``platform is``)
    must build once and share, which the experiment drivers do via
    :class:`~repro.experiments.assets.AssetStore.platform`.
    """
    return get_spec(name).build()


def spec_for_platform(platform: Platform) -> Optional[PlatformSpec]:
    """The spec registered under ``platform.name``, or ``None``.

    Platforms constructed outside the registry (ad-hoc test platforms,
    :func:`repro.platform.synthetic.tricluster` used directly) have no
    spec; callers treat that as "no declarative metadata available".
    """
    return _REGISTRY.get(platform.name)


for _spec in builtin_specs():
    register_platform(_spec)
del _spec
