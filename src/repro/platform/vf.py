"""Voltage/frequency (VF) levels and per-cluster VF tables.

The paper's platform supports per-cluster DVFS: all cores of a cluster share
one VF level chosen from a discrete, ordered table (the Linux ``cpufreq``
OPP table).  :class:`VFTable` provides the operations every policy in the
reproduction needs: ordered access, "lowest level that reaches frequency f",
and single-step moves (the QoS DVFS control loop of Sec. 5.2 moves one step
per invocation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

from repro.utils.validation import check_positive


@dataclass(frozen=True, order=True)
class VFLevel:
    """One operating performance point: a frequency and its supply voltage."""

    frequency_hz: float
    voltage_v: float

    def __post_init__(self) -> None:
        check_positive("frequency_hz", self.frequency_hz)
        check_positive("voltage_v", self.voltage_v)


class VFTable:
    """An ordered, immutable table of VF levels for one cluster.

    Levels are sorted by ascending frequency; voltage must be non-decreasing
    with frequency (physical DVFS tables are monotone).
    """

    def __init__(self, levels: Sequence[VFLevel]) -> None:
        if not levels:
            raise ValueError("VFTable needs at least one level")
        ordered = sorted(levels, key=lambda lv: lv.frequency_hz)
        for prev, cur in zip(ordered, ordered[1:]):
            if cur.frequency_hz == prev.frequency_hz:
                raise ValueError(
                    f"duplicate frequency {cur.frequency_hz} in VF table"
                )
            if cur.voltage_v < prev.voltage_v:
                raise ValueError("voltage must be non-decreasing with frequency")
        self._levels: List[VFLevel] = list(ordered)

    # --- basic container protocol --------------------------------------------
    def __len__(self) -> int:
        return len(self._levels)

    def __iter__(self) -> Iterator[VFLevel]:
        return iter(self._levels)

    def __getitem__(self, index: int) -> VFLevel:
        return self._levels[index]

    @property
    def levels(self) -> List[VFLevel]:
        """A copy of the ordered level list."""
        return list(self._levels)

    @property
    def frequencies(self) -> List[float]:
        """All frequencies in ascending order (Hz)."""
        return [lv.frequency_hz for lv in self._levels]

    @property
    def min_level(self) -> VFLevel:
        return self._levels[0]

    @property
    def max_level(self) -> VFLevel:
        return self._levels[-1]

    # --- lookups ---------------------------------------------------------------
    def index_of(self, frequency_hz: float) -> int:
        """Return the index of the level with exactly this frequency."""
        for i, lv in enumerate(self._levels):
            if lv.frequency_hz == frequency_hz:
                return i
        raise KeyError(f"frequency {frequency_hz} not in VF table")

    def level_at_or_above(self, frequency_hz: float) -> VFLevel:
        """The lowest level whose frequency is >= ``frequency_hz``.

        This implements the ``min { f in F_x : ... }`` selection of Eq. (1).
        Raises :class:`ValueError` if even the highest level is too slow,
        because callers must handle infeasible QoS targets explicitly.
        """
        for lv in self._levels:
            if lv.frequency_hz >= frequency_hz:
                return lv
        raise ValueError(
            f"no VF level reaches {frequency_hz} Hz "
            f"(max is {self.max_level.frequency_hz} Hz)"
        )

    def has_level_at_or_above(self, frequency_hz: float) -> bool:
        """Whether some level reaches ``frequency_hz``."""
        return self.max_level.frequency_hz >= frequency_hz

    def clamp(self, frequency_hz: float) -> VFLevel:
        """The lowest level >= ``frequency_hz``, or the max level if none."""
        if self.has_level_at_or_above(frequency_hz):
            return self.level_at_or_above(frequency_hz)
        return self.max_level

    # --- stepping ---------------------------------------------------------------
    def step_towards(self, current: VFLevel, target: VFLevel) -> VFLevel:
        """Move one table step from ``current`` towards ``target``.

        The DVFS control loop adjusts the VF level by only one step per
        invocation because its minimum-frequency estimates come from linear
        scaling and are only trustworthy for small changes (Sec. 5.2).
        """
        ci = self.index_of(current.frequency_hz)
        ti = self.index_of(target.frequency_hz)
        if ti > ci:
            return self._levels[ci + 1]
        if ti < ci:
            return self._levels[ci - 1]
        return current

    def step_down(self, current: VFLevel) -> VFLevel:
        """One step down (or the same level when already at the bottom)."""
        ci = self.index_of(current.frequency_hz)
        return self._levels[max(0, ci - 1)]

    def step_up(self, current: VFLevel) -> VFLevel:
        """One step up (or the same level when already at the top)."""
        ci = self.index_of(current.frequency_hz)
        return self._levels[min(len(self._levels) - 1, ci + 1)]

    def __repr__(self) -> str:
        freqs = ", ".join(f"{lv.frequency_hz / 1e9:.3f}" for lv in self._levels)
        return f"VFTable([{freqs}] GHz)"
