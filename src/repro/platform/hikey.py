"""Description of the HiKey 970 board used in the paper.

The HiKey 970 carries a HiSilicon Kirin 970 smartphone SoC with the common
Arm big.LITTLE architecture: four Cortex-A53 (LITTLE) cores and four
Cortex-A73 (big) cores with per-cluster DVFS up to 1.84 GHz and 2.36 GHz
respectively, plus an NPU.  The VF tables below follow the board's cpufreq
OPP tables; voltages are representative published values for the process
(the board exposes no voltage telemetry, and only relative V^2*f scaling
matters to the reproduction).

Core ids follow the Linux enumeration on the board, which the paper's
figures also use: cores 0-3 are LITTLE, cores 4-7 are big.
"""

from __future__ import annotations

from typing import Dict, List

from repro.platform.description import (
    Cluster,
    DTMConfig,
    FloorplanTile,
    Platform,
)
from repro.platform.vf import VFLevel, VFTable
from repro.utils.units import GHZ, MHZ

LITTLE = "LITTLE"
BIG = "big"

# (frequency, voltage) pairs for the Cortex-A53 cluster of the Kirin 970.
_LITTLE_OPP = [
    (509 * MHZ, 0.70),
    (1018 * MHZ, 0.80),
    (1210 * MHZ, 0.85),
    (1402 * MHZ, 0.90),
    (1556 * MHZ, 0.94),
    (1690 * MHZ, 0.97),
    (1844 * MHZ, 1.00),
]

# (frequency, voltage) pairs for the Cortex-A73 cluster of the Kirin 970.
_BIG_OPP = [
    (682 * MHZ, 0.72),
    (1018 * MHZ, 0.79),
    (1210 * MHZ, 0.83),
    (1364 * MHZ, 0.87),
    (1498 * MHZ, 0.90),
    (1652 * MHZ, 0.94),
    (1863 * MHZ, 0.99),
    (2093 * MHZ, 1.04),
    (2362 * MHZ, 1.10),
]


def _little_vf_table() -> VFTable:
    return VFTable([VFLevel(f, v) for f, v in _LITTLE_OPP])


def _big_vf_table() -> VFTable:
    return VFTable([VFLevel(f, v) for f, v in _BIG_OPP])


def _kirin970_floorplan() -> Dict[str, FloorplanTile]:
    """A representative Kirin 970 floorplan (dimensions in meters).

    The die is roughly 9.7 x 10 mm.  The CPU complex occupies one corner:
    the four A73 cores are several times larger than the A53 cores.  The
    remaining silicon (GPU, NPU, modem, uncore) is modeled as two passive
    blocks that act as lateral heat spreaders, which is what creates the
    spatial thermal coupling the paper emphasizes.
    """
    mm = 1e-3
    tiles: Dict[str, FloorplanTile] = {}
    # LITTLE cores: 0.9 x 0.8 mm each, in a 2x2 block at the die corner.
    lw, lh = 0.9 * mm, 0.8 * mm
    for i in range(4):
        col, row = i % 2, i // 2
        tiles[f"core{i}"] = FloorplanTile(f"core{i}", col * lw, row * lh, lw, lh)
    # big cores: 1.8 x 1.6 mm each, in a 2x2 block next to the LITTLE block.
    bw, bh = 1.8 * mm, 1.6 * mm
    bx0 = 2 * lw + 0.2 * mm
    for i in range(4):
        col, row = i % 2, i // 2
        tiles[f"core{4 + i}"] = FloorplanTile(
            f"core{4 + i}", bx0 + col * bw, row * bh, bw, bh
        )
    # Shared L2 / uncore blocks sit above each cluster.
    tiles["uncore_LITTLE"] = FloorplanTile(
        "uncore_LITTLE", 0.0, 2 * lh, 2 * lw, 3.0 * mm
    )
    tiles["uncore_big"] = FloorplanTile("uncore_big", bx0, 2 * bh, 2 * bw, 1.4 * mm)
    # Rest of the SoC (GPU, NPU, modem) as one large passive block.
    tiles["soc_rest"] = FloorplanTile("soc_rest", 0.0, 4.6 * mm, 9.7 * mm, 5.4 * mm)
    return tiles


def hikey970(
    ambient_temp_c: float = 25.0,
    dtm_trigger_c: float = 85.0,
    dtm_release_c: float = 80.0,
) -> Platform:
    """Build the HiKey 970 platform description.

    Power coefficients are calibrated so that a fully-loaded A73 core at
    2.36 GHz / 1.10 V dissipates about 1.8 W and a fully-loaded A53 core at
    1.84 GHz / 1.00 V about 0.45 W, matching published big.LITTLE
    measurements at the cluster level.
    """
    little = Cluster(
        name=LITTLE,
        core_ids=(0, 1, 2, 3),
        vf_table=_little_vf_table(),
        dyn_power_coeff=2.4e-10,
        static_power_coeff=0.035,
        idle_power_fraction=0.04,
        out_of_order=False,
    )
    big = Cluster(
        name=BIG,
        core_ids=(4, 5, 6, 7),
        vf_table=_big_vf_table(),
        dyn_power_coeff=6.3e-10,
        static_power_coeff=0.095,
        idle_power_fraction=0.05,
        out_of_order=True,
    )
    return Platform(
        name="hikey970",
        clusters=[little, big],
        floorplan=_kirin970_floorplan(),
        dtm=DTMConfig(
            trigger_temp_c=dtm_trigger_c,
            release_temp_c=dtm_release_c,
            check_period_s=0.1,
        ),
        ambient_temp_c=ambient_temp_c,
    )


def reduced_vf_grid(platform: Platform, per_cluster: int = 4) -> Dict[str, List[VFLevel]]:
    """Pick a reduced, evenly-spread subset of VF levels per cluster.

    The paper accelerates oracle trace collection by obtaining traces for a
    reduced set of VF levels (Sec. 4.2).  This helper selects
    ``per_cluster`` levels spread over each table, always including the
    lowest and highest level.
    """
    if per_cluster < 2:
        raise ValueError("per_cluster must be >= 2 to include min and max")
    grid: Dict[str, List[VFLevel]] = {}
    for cluster in platform.clusters:
        levels = cluster.vf_table.levels
        if per_cluster >= len(levels):
            grid[cluster.name] = levels
            continue
        picks = [
            levels[round(i * (len(levels) - 1) / (per_cluster - 1))]
            for i in range(per_cluster)
        ]
        # Deduplicate while preserving order (rounding can collide).
        seen = set()
        unique = []
        for lv in picks:
            if lv.frequency_hz not in seen:
                seen.add(lv.frequency_hz)
                unique.append(lv)
        grid[cluster.name] = unique
    return grid
