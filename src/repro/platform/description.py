"""Static platform description: cores, clusters, floorplan, DTM config.

A :class:`Platform` is the single source of truth about the hardware that
both the simulator substrate and the resource-management policies consume.
Policies may only use information that a real resource manager could obtain
(cluster topology, VF tables); internal parameters used by the power/thermal
substrate (capacitance coefficients, floorplan geometry) live here too but
are consumed only by the simulator, mirroring the paper's setting where the
policy has no power sensors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.platform.vf import VFLevel, VFTable
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class Core:
    """One CPU core: an index into the platform and its owning cluster."""

    core_id: int
    cluster_name: str

    def __post_init__(self) -> None:
        check_non_negative("core_id", self.core_id)


@dataclass
class Cluster:
    """A DVFS cluster: a set of identical cores sharing one VF domain.

    ``dyn_power_coeff`` is the effective switched capacitance (W / (V^2 Hz))
    per fully-active core; ``static_power_coeff`` scales the
    temperature-dependent leakage.  ``idle_power_fraction`` is the fraction
    of active dynamic power a clock-gated idle core still burns.
    """

    name: str
    core_ids: Tuple[int, ...]
    vf_table: VFTable
    dyn_power_coeff: float
    static_power_coeff: float
    idle_power_fraction: float = 0.05
    # Relative microarchitectural capability used by application models:
    # big cores have out-of-order pipelines and larger caches.
    out_of_order: bool = False

    def __post_init__(self) -> None:
        if not self.core_ids:
            raise ValueError(f"cluster {self.name!r} has no cores")
        check_positive("dyn_power_coeff", self.dyn_power_coeff)
        check_non_negative("static_power_coeff", self.static_power_coeff)
        check_non_negative("idle_power_fraction", self.idle_power_fraction)

    @property
    def n_cores(self) -> int:
        return len(self.core_ids)


@dataclass(frozen=True)
class FloorplanTile:
    """Axis-aligned placement of one thermal block on the die (meters)."""

    name: str
    x: float
    y: float
    width: float
    height: float

    def __post_init__(self) -> None:
        check_positive("width", self.width)
        check_positive("height", self.height)

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Tuple[float, float]:
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)

    def shares_edge_with(self, other: "FloorplanTile") -> float:
        """Length of the shared boundary with ``other`` (0 if not adjacent)."""
        eps = 1e-9
        # Vertical adjacency (side by side in x).
        if abs((self.x + self.width) - other.x) < eps or abs(
            (other.x + other.width) - self.x
        ) < eps:
            lo = max(self.y, other.y)
            hi = min(self.y + self.height, other.y + other.height)
            return max(0.0, hi - lo)
        # Horizontal adjacency (stacked in y).
        if abs((self.y + self.height) - other.y) < eps or abs(
            (other.y + other.height) - self.y
        ) < eps:
            lo = max(self.x, other.x)
            hi = min(self.x + self.width, other.x + other.width)
            return max(0.0, hi - lo)
        return 0.0


@dataclass(frozen=True)
class DTMConfig:
    """Dynamic thermal management (thermal throttling) parameters.

    Real boards throttle the VF levels when the critical temperature is
    exceeded; the paper's trace collection uses a fan precisely to avoid
    DTM polluting the training data.  The simulator implements the same
    reactive throttling so GTS/ondemand shows throttling without a fan.
    """

    trigger_temp_c: float = 85.0
    release_temp_c: float = 80.0
    check_period_s: float = 0.1

    def __post_init__(self) -> None:
        if self.release_temp_c > self.trigger_temp_c:
            raise ValueError("release_temp_c must not exceed trigger_temp_c")
        check_positive("check_period_s", self.check_period_s)


@dataclass
class Platform:
    """Complete static description of a clustered heterogeneous multi-core."""

    name: str
    clusters: List[Cluster]
    floorplan: Dict[str, FloorplanTile] = field(default_factory=dict)
    dtm: DTMConfig = field(default_factory=DTMConfig)
    ambient_temp_c: float = 25.0

    def __post_init__(self) -> None:
        seen_ids: set = set()
        for cluster in self.clusters:
            for cid in cluster.core_ids:
                if cid in seen_ids:
                    raise ValueError(f"core id {cid} appears in two clusters")
                seen_ids.add(cid)
        if seen_ids != set(range(len(seen_ids))):
            raise ValueError("core ids must be contiguous starting at 0")
        self._cores: List[Core] = [
            Core(cid, cluster.name)
            for cluster in self.clusters
            for cid in cluster.core_ids
        ]
        self._cores.sort(key=lambda c: c.core_id)
        self._cluster_by_name = {c.name: c for c in self.clusters}
        if len(self._cluster_by_name) != len(self.clusters):
            raise ValueError("cluster names must be unique")

    # --- lookups ---------------------------------------------------------------
    @property
    def cores(self) -> List[Core]:
        return list(self._cores)

    @property
    def n_cores(self) -> int:
        return len(self._cores)

    @property
    def cluster_names(self) -> List[str]:
        return [c.name for c in self.clusters]

    def cluster(self, name: str) -> Cluster:
        try:
            return self._cluster_by_name[name]
        except KeyError:
            raise KeyError(
                f"unknown cluster {name!r}; have {self.cluster_names}"
            ) from None

    def cluster_of_core(self, core_id: int) -> Cluster:
        return self._cluster_by_name[self._cores[core_id].cluster_name]

    def core_tile(self, core_id: int) -> Optional[FloorplanTile]:
        return self.floorplan.get(f"core{core_id}")

    def cores_in_cluster(self, name: str) -> List[int]:
        return list(self.cluster(name).core_ids)

    def default_vf_levels(self) -> Dict[str, VFLevel]:
        """Lowest VF level per cluster — the power-on / idle configuration."""
        return {c.name: c.vf_table.min_level for c in self.clusters}

    def max_vf_levels(self) -> Dict[str, VFLevel]:
        """Highest VF level per cluster."""
        return {c.name: c.vf_table.max_level for c in self.clusters}


def grid_floorplan(
    blocks: Sequence[Tuple[str, float, float]],
    columns: int,
    origin: Tuple[float, float] = (0.0, 0.0),
) -> Dict[str, FloorplanTile]:
    """Lay out ``(name, width, height)`` blocks row-major on a grid.

    A convenience for building regular core grids; rows are packed with the
    max block height of the row so tiles never overlap.
    """
    check_positive("columns", columns)
    tiles: Dict[str, FloorplanTile] = {}
    x0, y0 = origin
    x, y = x0, y0
    row_height = 0.0
    for i, (name, w, h) in enumerate(blocks):
        if i > 0 and i % columns == 0:
            x = x0
            y += row_height
            row_height = 0.0
        tiles[name] = FloorplanTile(name, x, y, w, h)
        x += w
        row_height = max(row_height, h)
    return tiles
