"""Declarative platform specifications: SoC descriptions as plain data.

A :class:`PlatformSpec` captures everything the simulator substrate needs
to model one SoC — cluster topology, per-cluster VF tables, floorplan
geometry, DTM thresholds, NPU presence/latency, RC-network materials, and
board cooling — as frozen dataclasses of plain scalars.  Specs round-trip
through :meth:`PlatformSpec.to_dict` / :meth:`PlatformSpec.from_dict`
(JSON/TOML-compatible nesting), are validated eagerly by
:meth:`PlatformSpec.validate`, and :meth:`PlatformSpec.build` lowers them
to the imperative :class:`~repro.platform.description.Platform` the rest
of the code base consumes.

``build()`` copies every captured float verbatim — it never recomputes or
re-derives values — so a spec captured from an existing platform via
:meth:`PlatformSpec.from_platform` builds a bit-identical twin: same
``canonical_json``, same :func:`~repro.store.keys.platform_fingerprint`,
same simulation trace.  The golden-trace tests rely on this for the
``hikey970`` registry entry.

Specs carry two kinds of information the imperative ``Platform`` does not:

* accelerator and cooling defaults (:class:`NPUSpec`, :class:`CoolingSpec`,
  :class:`ThermalSpec`) consumed by technique construction and the
  platform-zoo tooling, and
* per-cluster *performance derivation hints* (``perf_like`` /
  ``perf_scale``) that let the catalog's big.LITTLE application models run
  on clusters the catalog has no measurements for (see
  :func:`repro.apps.adapt.adapt_app_for_platform`).

See ``docs/platforms.md`` for the authoring guide and
:mod:`repro.platform.registry` for registration/lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Tuple

from repro.platform.description import (
    Cluster,
    DTMConfig,
    FloorplanTile,
    Platform,
)
from repro.platform.vf import VFLevel, VFTable

if TYPE_CHECKING:  # imported lazily at runtime to keep layering acyclic
    from repro.npu.overhead import ManagementOverheadModel
    from repro.thermal.builder import ThermalMaterials
    from repro.thermal.cooling import CoolingConfig


class PlatformSpecError(ValueError):
    """A platform spec failed validation (bad topology, missing tiles...)."""


@dataclass(frozen=True)
class ClusterSpec:
    """One DVFS cluster as plain data.

    ``name``: cluster identifier (``"LITTLE"``, ``"big"``, ...).
    ``core_ids``: global core indices owned by this cluster; across all
    clusters the ids must be contiguous starting at 0.
    ``vf_points``: ``(frequency_hz, voltage_v)`` pairs in ascending
    frequency order — the cluster's cpufreq OPP table.
    ``dyn_power_coeff``: effective switched capacitance per fully-active
    core, in W / (V^2 * Hz).
    ``static_power_coeff``: scale of the temperature-dependent leakage, in
    W at the leakage reference temperature.
    ``idle_power_fraction``: fraction (0..1) of active dynamic power a
    clock-gated idle core still burns.
    ``out_of_order``: microarchitectural class flag used by application
    models (out-of-order cores have bigger caches and lower CPI).
    ``perf_like``: name of the catalog cluster (``"LITTLE"`` or ``"big"``)
    whose measured per-application parameters this cluster should inherit
    when an application carries no entry for ``name``; ``None`` disables
    derivation.
    ``perf_scale``: dimensionless speedup applied to the inherited
    parameters (CPI and memory stall time divide by it); 1.0 = identical.
    """

    name: str
    core_ids: Tuple[int, ...]
    vf_points: Tuple[Tuple[float, float], ...]
    dyn_power_coeff: float
    static_power_coeff: float
    idle_power_fraction: float = 0.05
    out_of_order: bool = False
    perf_like: Optional[str] = None
    perf_scale: float = 1.0

    def vf_table(self) -> VFTable:
        """The cluster's OPP table as an ordered :class:`VFTable`."""
        return VFTable([VFLevel(f, v) for f, v in self.vf_points])

    def build(self) -> Cluster:
        """Lower to the imperative :class:`Cluster` (floats verbatim)."""
        return Cluster(
            name=self.name,
            core_ids=tuple(self.core_ids),
            vf_table=self.vf_table(),
            dyn_power_coeff=self.dyn_power_coeff,
            static_power_coeff=self.static_power_coeff,
            idle_power_fraction=self.idle_power_fraction,
            out_of_order=self.out_of_order,
        )


@dataclass(frozen=True)
class TileSpec:
    """Axis-aligned floorplan block: position and size in meters.

    Tile names are load-bearing: the simulator requires one ``core<i>``
    tile per core id, one ``uncore_<cluster>`` tile per cluster (the
    cluster-level thermal-zone sensor node), and one ``soc_rest`` tile
    (the remaining silicon, also a zone sensor node).
    """

    name: str
    x_m: float
    y_m: float
    width_m: float
    height_m: float

    def build(self) -> FloorplanTile:
        """Lower to the imperative :class:`FloorplanTile`."""
        return FloorplanTile(
            self.name, self.x_m, self.y_m, self.width_m, self.height_m
        )


@dataclass(frozen=True)
class DTMSpec:
    """Dynamic thermal management thresholds.

    ``trigger_temp_c`` / ``release_temp_c``: throttle entry/exit
    temperatures in degrees Celsius (release must not exceed trigger).
    ``check_period_s``: DTM polling period in seconds.
    """

    trigger_temp_c: float = 85.0
    release_temp_c: float = 80.0
    check_period_s: float = 0.1

    def build(self) -> DTMConfig:
        """Lower to :class:`DTMConfig` (floats verbatim)."""
        return DTMConfig(
            trigger_temp_c=self.trigger_temp_c,
            release_temp_c=self.release_temp_c,
            check_period_s=self.check_period_s,
        )


@dataclass(frozen=True)
class NPUSpec:
    """Accelerator presence and inference-latency model parameters.

    ``present``: whether the SoC has an NPU.  Platforms without one run
    TOP-IL's neural network on a CPU core (the paper's Fig. 11 CPU
    baseline) via :meth:`PlatformSpec.management_overhead_model`.
    ``setup_s``: per-inference offload setup time in seconds.
    ``per_wave_s``: seconds per wave of ``wave_size`` parallel MACs.
    ``timeout_budget_s``: inference deadline in seconds; an inference
    exceeding it is treated as failed by the resilience layer.
    """

    present: bool = True
    setup_s: float = 1.7e-3
    per_wave_s: float = 0.3e-3
    wave_size: int = 16
    timeout_budget_s: float = 25e-3


@dataclass(frozen=True)
class ThermalSpec:
    """RC thermal-network material/geometry constants.

    ``effective_thickness_m``: combined die + spreader thickness in meters.
    ``lateral_k_w_per_mk``: in-plane conductivity in W/(m*K).
    ``vertical_w_per_k_m2``: area-specific silicon-to-board conductance in
    W/(K*m^2).
    ``volumetric_heat_capacity_j_per_m3k``: heat capacity in J/(m^3*K).
    Defaults equal :class:`repro.thermal.builder.ThermalMaterials`.
    """

    effective_thickness_m: float = 1.0e-3
    lateral_k_w_per_mk: float = 150.0
    vertical_w_per_k_m2: float = 5500.0
    volumetric_heat_capacity_j_per_m3k: float = 1.75e6

    def materials(self) -> "ThermalMaterials":
        """Lower to :class:`ThermalMaterials` for the network builder."""
        from repro.thermal.builder import ThermalMaterials

        return ThermalMaterials(
            effective_thickness_m=self.effective_thickness_m,
            lateral_k_w_per_mk=self.lateral_k_w_per_mk,
            vertical_w_per_k_m2=self.vertical_w_per_k_m2,
            volumetric_heat_capacity_j_per_m3k=(
                self.volumetric_heat_capacity_j_per_m3k
            ),
        )


@dataclass(frozen=True)
class CoolingSpec:
    """Board cooling defaults for the platform.

    ``active_w_per_k`` / ``passive_w_per_k``: board-to-ambient convective
    conductance in W/K with and without active cooling (fan).
    ``board_capacitance_j_per_k``: board + heatsink thermal capacitance in
    J/K.  Defaults equal the HiKey 970 ``FAN_COOLING`` / ``PASSIVE_COOLING``
    configurations.
    """

    active_w_per_k: float = 0.70
    passive_w_per_k: float = 0.24
    board_capacitance_j_per_k: float = 60.0

    def fan(self) -> "CoolingConfig":
        """Active cooling as a :class:`CoolingConfig` (named ``"fan"``)."""
        from repro.thermal.cooling import CoolingConfig

        return CoolingConfig(
            name="fan",
            board_to_ambient_w_per_k=self.active_w_per_k,
            board_capacitance_j_per_k=self.board_capacitance_j_per_k,
        )

    def passive(self) -> "CoolingConfig":
        """Passive cooling as a :class:`CoolingConfig` (named ``"no_fan"``)."""
        from repro.thermal.cooling import CoolingConfig

        return CoolingConfig(
            name="no_fan",
            board_to_ambient_w_per_k=self.passive_w_per_k,
            board_capacitance_j_per_k=self.board_capacitance_j_per_k,
        )


@dataclass(frozen=True)
class PlatformSpec:
    """Complete declarative description of one SoC (see module docstring).

    ``name`` doubles as the registry key and as the built
    :attr:`Platform.name`, which the artifact store fingerprints — two
    specs with different data must use different names.
    ``ambient_temp_c`` is the default ambient temperature in Celsius.
    """

    name: str
    clusters: Tuple[ClusterSpec, ...]
    floorplan: Tuple[TileSpec, ...]
    dtm: DTMSpec = field(default_factory=DTMSpec)
    ambient_temp_c: float = 25.0
    npu: NPUSpec = field(default_factory=NPUSpec)
    thermal: ThermalSpec = field(default_factory=ThermalSpec)
    cooling: CoolingSpec = field(default_factory=CoolingSpec)
    description: str = ""

    # --- lookups ---------------------------------------------------------------
    @property
    def n_cores(self) -> int:
        """Total core count across clusters."""
        return sum(len(c.core_ids) for c in self.clusters)

    @property
    def cluster_names(self) -> Tuple[str, ...]:
        """Cluster names in declaration order."""
        return tuple(c.name for c in self.clusters)

    def cluster(self, name: str) -> ClusterSpec:
        """The cluster spec called ``name`` (KeyError with the known set)."""
        for cluster in self.clusters:
            if cluster.name == name:
                return cluster
        raise KeyError(
            f"unknown cluster {name!r}; have {self.cluster_names}"
        )

    # --- validation ------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`PlatformSpecError` on any structural problem.

        Checks everything :meth:`build` relies on *plus* the simulator's
        floorplan contract (``core<i>`` / ``uncore_<cluster>`` /
        ``soc_rest`` tiles), so a registered spec is guaranteed to
        simulate.  Value-level checks (positive coefficients, monotone VF
        tables) are re-enforced by the target dataclasses at build time;
        this method runs a build to surface them eagerly with the spec
        name attached.
        """
        if not self.name:
            raise PlatformSpecError("platform spec has an empty name")
        prefix = f"platform spec {self.name!r}"
        if not self.clusters:
            raise PlatformSpecError(f"{prefix}: no clusters")
        names = [c.name for c in self.clusters]
        if len(set(names)) != len(names):
            raise PlatformSpecError(f"{prefix}: duplicate cluster names")
        core_ids = [cid for c in self.clusters for cid in c.core_ids]
        if sorted(core_ids) != list(range(len(core_ids))):
            raise PlatformSpecError(
                f"{prefix}: core ids must be contiguous starting at 0, "
                f"got {sorted(core_ids)}"
            )
        for cluster in self.clusters:
            cprefix = f"{prefix}, cluster {cluster.name!r}"
            if not cluster.vf_points:
                raise PlatformSpecError(f"{cprefix}: empty VF table")
            freqs = [f for f, _ in cluster.vf_points]
            if sorted(freqs) != freqs:
                raise PlatformSpecError(
                    f"{cprefix}: VF points must be in ascending "
                    "frequency order"
                )
            if cluster.perf_scale <= 0.0:
                raise PlatformSpecError(f"{cprefix}: perf_scale must be > 0")
            if cluster.perf_like is not None and cluster.perf_like == cluster.name:
                raise PlatformSpecError(
                    f"{cprefix}: perf_like must reference another cluster"
                )
        tile_names = {t.name for t in self.floorplan}
        if len(tile_names) != len(self.floorplan):
            raise PlatformSpecError(f"{prefix}: duplicate floorplan tiles")
        missing = [
            f"core{cid}" for cid in range(len(core_ids))
            if f"core{cid}" not in tile_names
        ]
        missing += [
            f"uncore_{c.name}" for c in self.clusters
            if f"uncore_{c.name}" not in tile_names
        ]
        if "soc_rest" not in tile_names:
            missing.append("soc_rest")
        if missing:
            raise PlatformSpecError(
                f"{prefix}: floorplan is missing required tiles "
                f"{missing} (the simulator indexes per-core tiles, "
                "per-cluster uncore zone tiles, and soc_rest)"
            )
        if self.npu.wave_size <= 0:
            raise PlatformSpecError(f"{prefix}: npu.wave_size must be > 0")
        try:
            self.build()
        except PlatformSpecError:
            raise
        except (ValueError, KeyError) as exc:
            raise PlatformSpecError(f"{prefix}: {exc}") from exc

    # --- lowering --------------------------------------------------------------
    def build(self) -> Platform:
        """Construct the imperative :class:`Platform` (floats verbatim)."""
        return Platform(
            name=self.name,
            clusters=[c.build() for c in self.clusters],
            floorplan={t.name: t.build() for t in self.floorplan},
            dtm=self.dtm.build(),
            ambient_temp_c=self.ambient_temp_c,
        )

    def management_overhead_model(self) -> Optional["ManagementOverheadModel"]:
        """Technique-construction hook for the platform's accelerator.

        ``None`` when the platform has an NPU: TOP-IL then uses its
        default :class:`NPUInferenceLatency` (the paper's configuration,
        kept default so HiKey behavior is untouched).  For NPU-less
        platforms, returns an overhead model that runs inference on a CPU
        core for both the primary and the degraded path.
        """
        from repro.npu.latency import CPUInferenceLatency, NPUInferenceLatency
        from repro.npu.overhead import ManagementOverheadModel

        if self.npu.present:
            return ManagementOverheadModel(
                inference=NPUInferenceLatency(
                    setup_s=self.npu.setup_s,
                    per_wave_s=self.npu.per_wave_s,
                    wave_size=self.npu.wave_size,
                    timeout_budget_s=self.npu.timeout_budget_s,
                )
            )
        cpu = CPUInferenceLatency()
        return ManagementOverheadModel(inference=cpu, cpu_inference=cpu)

    # --- plain-data round trip --------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON/TOML-compatible nested-dict form (round-trips from_dict)."""
        return {
            "name": self.name,
            "description": self.description,
            "ambient_temp_c": self.ambient_temp_c,
            "clusters": [
                {
                    "name": c.name,
                    "core_ids": list(c.core_ids),
                    "vf_points": [[f, v] for f, v in c.vf_points],
                    "dyn_power_coeff": c.dyn_power_coeff,
                    "static_power_coeff": c.static_power_coeff,
                    "idle_power_fraction": c.idle_power_fraction,
                    "out_of_order": c.out_of_order,
                    "perf_like": c.perf_like,
                    "perf_scale": c.perf_scale,
                }
                for c in self.clusters
            ],
            "floorplan": [
                {
                    "name": t.name,
                    "x_m": t.x_m,
                    "y_m": t.y_m,
                    "width_m": t.width_m,
                    "height_m": t.height_m,
                }
                for t in self.floorplan
            ],
            "dtm": {
                "trigger_temp_c": self.dtm.trigger_temp_c,
                "release_temp_c": self.dtm.release_temp_c,
                "check_period_s": self.dtm.check_period_s,
            },
            "npu": {
                "present": self.npu.present,
                "setup_s": self.npu.setup_s,
                "per_wave_s": self.npu.per_wave_s,
                "wave_size": self.npu.wave_size,
                "timeout_budget_s": self.npu.timeout_budget_s,
            },
            "thermal": {
                "effective_thickness_m": self.thermal.effective_thickness_m,
                "lateral_k_w_per_mk": self.thermal.lateral_k_w_per_mk,
                "vertical_w_per_k_m2": self.thermal.vertical_w_per_k_m2,
                "volumetric_heat_capacity_j_per_m3k": (
                    self.thermal.volumetric_heat_capacity_j_per_m3k
                ),
            },
            "cooling": {
                "active_w_per_k": self.cooling.active_w_per_k,
                "passive_w_per_k": self.cooling.passive_w_per_k,
                "board_capacitance_j_per_k": (
                    self.cooling.board_capacitance_j_per_k
                ),
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlatformSpec":
        """Build a spec from the nested-dict form (e.g. parsed TOML).

        Sections ``dtm`` / ``npu`` / ``thermal`` / ``cooling`` and every
        per-cluster hint are optional and default as documented on the
        spec classes.
        """
        clusters = tuple(
            ClusterSpec(
                name=c["name"],
                core_ids=tuple(int(i) for i in c["core_ids"]),
                vf_points=tuple(
                    (float(f), float(v)) for f, v in c["vf_points"]
                ),
                dyn_power_coeff=float(c["dyn_power_coeff"]),
                static_power_coeff=float(c["static_power_coeff"]),
                idle_power_fraction=float(c.get("idle_power_fraction", 0.05)),
                out_of_order=bool(c.get("out_of_order", False)),
                perf_like=c.get("perf_like"),
                perf_scale=float(c.get("perf_scale", 1.0)),
            )
            for c in data["clusters"]
        )
        floorplan = tuple(
            TileSpec(
                name=t["name"],
                x_m=float(t["x_m"]),
                y_m=float(t["y_m"]),
                width_m=float(t["width_m"]),
                height_m=float(t["height_m"]),
            )
            for t in data["floorplan"]
        )
        return cls(
            name=data["name"],
            clusters=clusters,
            floorplan=floorplan,
            dtm=DTMSpec(**data.get("dtm", {})),
            ambient_temp_c=float(data.get("ambient_temp_c", 25.0)),
            npu=NPUSpec(**data.get("npu", {})),
            thermal=ThermalSpec(**data.get("thermal", {})),
            cooling=CoolingSpec(**data.get("cooling", {})),
            description=data.get("description", ""),
        )

    @classmethod
    def from_platform(
        cls,
        platform: Platform,
        *,
        name: Optional[str] = None,
        description: str = "",
        npu: Optional[NPUSpec] = None,
        thermal: Optional[ThermalSpec] = None,
        cooling: Optional[CoolingSpec] = None,
        perf_like: Optional[Mapping[str, Tuple[str, float]]] = None,
    ) -> "PlatformSpec":
        """Capture an existing :class:`Platform` as a declarative spec.

        Every float is copied verbatim, so ``from_platform(p).build()``
        is bit-identical to ``p``.  ``perf_like`` optionally maps a
        cluster name to its ``(perf_like, perf_scale)`` derivation hint.
        """
        hints = dict(perf_like or {})
        clusters = []
        for cluster in platform.clusters:
            like, scale = hints.get(cluster.name, (None, 1.0))
            clusters.append(
                ClusterSpec(
                    name=cluster.name,
                    core_ids=tuple(cluster.core_ids),
                    vf_points=tuple(
                        (lv.frequency_hz, lv.voltage_v)
                        for lv in cluster.vf_table
                    ),
                    dyn_power_coeff=cluster.dyn_power_coeff,
                    static_power_coeff=cluster.static_power_coeff,
                    idle_power_fraction=cluster.idle_power_fraction,
                    out_of_order=cluster.out_of_order,
                    perf_like=like,
                    perf_scale=scale,
                )
            )
        floorplan = tuple(
            TileSpec(
                name=tile.name,
                x_m=tile.x,
                y_m=tile.y,
                width_m=tile.width,
                height_m=tile.height,
            )
            for tile in platform.floorplan.values()
        )
        return cls(
            name=name if name is not None else platform.name,
            clusters=tuple(clusters),
            floorplan=floorplan,
            dtm=DTMSpec(
                trigger_temp_c=platform.dtm.trigger_temp_c,
                release_temp_c=platform.dtm.release_temp_c,
                check_period_s=platform.dtm.check_period_s,
            ),
            ambient_temp_c=platform.ambient_temp_c,
            npu=npu if npu is not None else NPUSpec(),
            thermal=thermal if thermal is not None else ThermalSpec(),
            cooling=cooling if cooling is not None else CoolingSpec(),
            description=description,
        )
