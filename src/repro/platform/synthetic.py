"""Synthetic platforms beyond the HiKey 970.

The paper states its solution "is compatible with any number of clusters".
This module provides a tri-cluster platform (LITTLE / big / prime, like
modern flagship SoCs) to exercise that claim: the feature extractor, trace
collector, dataset builder, DVFS loop, and TOP-IL policy are all
cluster-count-agnostic, and the tests in
``tests/unit/test_synthetic_platform.py`` prove it end to end.

(The GTS baseline and the RL state quantizer are intentionally
big.LITTLE-specific, as on real devices.)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Sequence, Tuple

from repro.platform.description import Cluster, FloorplanTile, Platform
from repro.platform.vf import VFLevel, VFTable
from repro.utils.units import MHZ

if TYPE_CHECKING:  # runtime import is lazy to avoid a platform<->apps cycle
    from repro.apps.model import AppModel

LITTLE = "LITTLE"
BIG = "big"
PRIME = "prime"

_LITTLE_OPP = [(500 * MHZ, 0.70), (1000 * MHZ, 0.80), (1500 * MHZ, 0.90), (1800 * MHZ, 1.00)]
_BIG_OPP = [(700 * MHZ, 0.72), (1400 * MHZ, 0.85), (2000 * MHZ, 0.95), (2400 * MHZ, 1.05)]
_PRIME_OPP = [(800 * MHZ, 0.75), (1600 * MHZ, 0.88), (2400 * MHZ, 1.00), (2900 * MHZ, 1.10)]


def _table(opp: Sequence[Tuple[float, float]]) -> VFTable:
    return VFTable([VFLevel(f, v) for f, v in opp])


def tricluster(ambient_temp_c: float = 25.0) -> Platform:
    """A 4+3+1 LITTLE/big/prime platform with per-cluster DVFS."""
    little = Cluster(
        name=LITTLE,
        core_ids=(0, 1, 2, 3),
        vf_table=_table(_LITTLE_OPP),
        dyn_power_coeff=2.4e-10,
        static_power_coeff=0.035,
        out_of_order=False,
    )
    big = Cluster(
        name=BIG,
        core_ids=(4, 5, 6),
        vf_table=_table(_BIG_OPP),
        dyn_power_coeff=6.0e-10,
        static_power_coeff=0.09,
        out_of_order=True,
    )
    prime = Cluster(
        name=PRIME,
        core_ids=(7,),
        vf_table=_table(_PRIME_OPP),
        dyn_power_coeff=9.0e-10,
        static_power_coeff=0.14,
        out_of_order=True,
    )
    mm = 1e-3
    tiles: Dict[str, FloorplanTile] = {}
    lw, lh = 0.9 * mm, 0.8 * mm
    for i in range(4):
        tiles[f"core{i}"] = FloorplanTile(
            f"core{i}", (i % 2) * lw, (i // 2) * lh, lw, lh
        )
    bw, bh = 1.7 * mm, 1.5 * mm
    bx0 = 2 * lw + 0.2 * mm
    for i in range(3):
        tiles[f"core{4 + i}"] = FloorplanTile(
            f"core{4 + i}", bx0 + (i % 2) * bw, (i // 2) * bh, bw, bh
        )
    tiles["core7"] = FloorplanTile(
        "core7", bx0 + bw, bh, 2.2 * mm, 2.0 * mm
    )
    tiles[f"uncore_{LITTLE}"] = FloorplanTile(f"uncore_{LITTLE}", 0.0, 2 * lh, 2 * lw, 2.0 * mm)
    tiles[f"uncore_{BIG}"] = FloorplanTile(f"uncore_{BIG}", bx0, 2 * bh, bw, 0.6 * mm)
    tiles[f"uncore_{PRIME}"] = FloorplanTile(
        f"uncore_{PRIME}", bx0 + bw, bh + 2.0 * mm, 2.2 * mm, 0.6 * mm
    )
    tiles["soc_rest"] = FloorplanTile("soc_rest", 0.0, 3.6 * mm, 9.0 * mm, 5.0 * mm)
    return Platform(
        name="synthetic-tricluster",
        clusters=[little, big, prime],
        floorplan=tiles,
        ambient_temp_c=ambient_temp_c,
    )


def synthetic_app(
    name: str = "kernel",
    cpi_little: float = 1.3,
    cpi_big: float = 0.7,
    cpi_prime: float = 0.55,
    mem_time: float = 1.0e-10,
    activity: float = 0.85,
) -> "AppModel":
    """A constant-behaviour application with parameters for all clusters."""
    from repro.apps.model import AppModel, ClusterPerfParams

    return AppModel(
        name=name,
        suite="synthetic",
        perf={
            LITTLE: ClusterPerfParams(cpi_little, mem_time, activity),
            BIG: ClusterPerfParams(cpi_big, mem_time * 0.8, activity),
            PRIME: ClusterPerfParams(cpi_prime, mem_time * 0.7, activity),
        },
        l2d_per_inst=0.01,
        total_instructions=2.0e11,
    )
