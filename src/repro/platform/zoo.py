"""Built-in platform zoo: the registry's three stock SoC descriptions.

* ``hikey970`` — the paper's board, captured verbatim from
  :func:`repro.platform.hikey.hikey970` so the registry build is
  bit-identical to the imperative constructor (golden-trace guarded).
* ``tricluster`` — a modern flagship-phone SoC with LITTLE/big/prime
  clusters (4+3+1), captured from :func:`repro.platform.synthetic.tricluster`
  with derivation hints for the prime cluster.
* ``snuca-grid`` — a many-core S-NUCA-style grid: 16 identical in-order
  cores in one DVFS domain on a regular 4x4 floorplan, no NPU (TOP-IL
  inference runs on a CPU core), server-class cooling.

Every entry is a plain-data :class:`~repro.platform.spec.PlatformSpec`;
``docs/platforms.md`` walks through authoring a fourth one.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.platform.hikey import hikey970
from repro.platform.spec import (
    ClusterSpec,
    CoolingSpec,
    NPUSpec,
    PlatformSpec,
    TileSpec,
)
from repro.platform.synthetic import tricluster
from repro.utils.units import MHZ

HIKEY970 = "hikey970"
TRICLUSTER = "tricluster"
SNUCA_GRID = "snuca-grid"


def _hikey970_spec() -> PlatformSpec:
    """The HiKey 970, captured float-for-float from the paper's model."""
    return PlatformSpec.from_platform(
        hikey970(),
        description=(
            "HiKey 970 (HiSilicon Kirin 970): 4x Cortex-A53 LITTLE + "
            "4x Cortex-A73 big, per-cluster DVFS, on-SoC NPU — the "
            "paper's evaluation board"
        ),
        npu=NPUSpec(present=True),
    )


def _tricluster_spec() -> PlatformSpec:
    """A 4+3+1 LITTLE/big/prime flagship-phone SoC.

    Captured from :func:`repro.platform.synthetic.tricluster` (the
    platform the cluster-count-generalization tests exercise) and renamed
    to the registry key.  The catalog's applications carry measured
    parameters for ``LITTLE`` and ``big`` only; the prime cluster derives
    its parameters from ``big`` scaled by 1.25 (a prime core is a wider
    implementation of the same microarchitecture).
    """
    return PlatformSpec.from_platform(
        tricluster(),
        name=TRICLUSTER,
        description=(
            "Flagship-phone tri-cluster SoC: 4x LITTLE + 3x big + "
            "1x prime with per-cluster DVFS and an NPU"
        ),
        npu=NPUSpec(present=True),
        perf_like={"prime": ("big", 1.25)},
    )


# One shared OPP table for the grid's single DVFS domain: modest in-order
# cores, DVFS between 600 MHz and 2.0 GHz.
_GRID_OPP: Tuple[Tuple[float, float], ...] = (
    (600 * MHZ, 0.70),
    (1000 * MHZ, 0.78),
    (1400 * MHZ, 0.86),
    (1800 * MHZ, 0.95),
    (2000 * MHZ, 1.00),
)


def _snuca_grid_spec(columns: int = 4, rows: int = 4) -> PlatformSpec:
    """A many-core S-NUCA-style grid of identical in-order cores.

    ``columns x rows`` cores tile the die regularly (each 1.1 x 1.1 mm);
    a shared-LLC uncore strip and the remaining SoC sit above the grid.
    One cluster, one VF domain, no NPU — the contrasting silicon for the
    generalization claims: no big.LITTLE structure (GTS and the RL state
    quantizer do not apply) and CPU-only TOP-IL inference.
    """
    mm = 1e-3
    core_w, core_h = 1.1 * mm, 1.1 * mm
    n = columns * rows
    tiles: List[TileSpec] = [
        TileSpec(
            name=f"core{i}",
            x_m=(i % columns) * core_w,
            y_m=(i // columns) * core_h,
            width_m=core_w,
            height_m=core_h,
        )
        for i in range(n)
    ]
    grid_w = columns * core_w
    grid_h = rows * core_h
    tiles.append(
        TileSpec(
            name="uncore_grid",
            x_m=0.0,
            y_m=grid_h,
            width_m=grid_w,
            height_m=1.6 * mm,
        )
    )
    tiles.append(
        TileSpec(
            name="soc_rest",
            x_m=0.0,
            y_m=grid_h + 1.6 * mm,
            width_m=grid_w,
            height_m=2.4 * mm,
        )
    )
    return PlatformSpec(
        name=SNUCA_GRID,
        clusters=(
            ClusterSpec(
                name="grid",
                core_ids=tuple(range(n)),
                vf_points=_GRID_OPP,
                dyn_power_coeff=2.8e-10,
                static_power_coeff=0.040,
                idle_power_fraction=0.04,
                out_of_order=False,
                perf_like="LITTLE",
                perf_scale=1.1,
            ),
        ),
        floorplan=tuple(tiles),
        npu=NPUSpec(present=False),
        cooling=CoolingSpec(
            active_w_per_k=1.2,
            passive_w_per_k=0.40,
            board_capacitance_j_per_k=90.0,
        ),
        description=(
            f"S-NUCA-style many-core grid: {n} identical in-order cores "
            "in one DVFS domain, shared-LLC uncore strip, no NPU"
        ),
    )


def builtin_specs() -> Tuple[PlatformSpec, ...]:
    """All stock specs, in registry order (hikey970 first)."""
    return (_hikey970_spec(), _tricluster_spec(), _snuca_grid_spec())
