"""Chaos plans: *which* host-level faults to inject, and how often.

A :class:`ChaosPlan` is the frozen, declarative twin of
:class:`repro.faults.plan.FaultPlan`, one level down the stack: instead
of simulated-SoC faults it describes failures of the infrastructure the
experiments run on.  It carries no state — randomness lives entirely in
:class:`~repro.chaos.engine.ChaosEngine`, which derives private streams
from ``plan.seed`` so injections replay deterministically and a
zero-rate plan never perturbs anything.

The compact textual form (CLI ``--chaos``, env ``REPRO_CHAOS``)::

    store_write_error:0.3,torn_write:0.5,worker_kill:1@1

is comma-separated ``kind:rate`` pairs; the optional ``@N`` suffix caps
injection to cell attempts ``<= N`` (1-based), which is how a plan says
"kill the first attempt, let the retry through".  ``REPRO_CHAOS_DIR``
names a scratch directory for cross-process once-only markers
(``kill_after_checkpoint``); it is orchestration state, not part of the
plan identity, so :meth:`ChaosPlan.describe` excludes it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.utils.floatcmp import is_zero

#: Environment carriers for fork-pool workers (see repro.cli).
CHAOS_ENV = "REPRO_CHAOS"
CHAOS_SEED_ENV = "REPRO_CHAOS_SEED"
CHAOS_DIR_ENV = "REPRO_CHAOS_DIR"

#: Every chaos kind the engine understands, with the opportunity each
#: rate is measured against.
CHAOS_KINDS: Tuple[str, ...] = (
    "store_read_error",  # per payload read: transient OSError (EIO)
    "store_write_error",  # per payload write: transient OSError (EIO)
    "torn_write",  # per payload write: file truncated before publish
    "corrupt_checksum",  # per payload write: one byte flipped
    "enospc",  # per payload write: OSError (ENOSPC), non-transient
    "worker_kill",  # per cell attempt: SIGKILL the worker process
    "slow_cell",  # per cell attempt: inject a short stall
    "kill_after_checkpoint",  # once per scratch dir: SIGKILL after a checkpoint write
)

#: Kinds whose trigger decision is keyed by (cell index, attempt) so it
#: is independent of worker scheduling.
_CELL_KINDS = ("worker_kill", "slow_cell")

#: Injected stall length for ``slow_cell`` (wall seconds, deliberately
#: tiny — enough to reorder completions, not to slow the suite).
SLOW_CELL_STALL_S = 0.05


@dataclass(frozen=True)
class ChaosSpec:
    """One chaos family: kind, trigger rate, optional attempt cap.

    ``rate`` is the probability of triggering at each opportunity.
    ``max_attempt`` (1-based, ``None`` = unlimited) bounds injection to
    early cell attempts for the per-cell kinds — a ``worker_kill`` plan
    with ``max_attempt=1`` kills every first attempt it rolls for but
    lets the supervisor's retry run to completion.
    """

    kind: str
    rate: float
    max_attempt: Optional[int] = 1

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ValueError(
                f"unknown chaos kind {self.kind!r}; known: {CHAOS_KINDS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.max_attempt is not None and self.max_attempt < 1:
            raise ValueError("max_attempt must be >= 1 (1-based)")

    def applies_to_attempt(self, attempt: int) -> bool:
        """Whether this spec may inject on cell attempt ``attempt``."""
        return self.max_attempt is None or attempt <= self.max_attempt


@dataclass(frozen=True)
class ChaosPlan:
    """An immutable set of :class:`ChaosSpec` plus the engine seed."""

    specs: Tuple[ChaosSpec, ...] = ()
    seed: int = 0
    scratch_dir: Optional[str] = None

    def is_zero(self) -> bool:
        """True when the plan can never trigger anything."""
        return all(is_zero(spec.rate) for spec in self.specs)

    def spec_for(self, kind: str) -> Optional[ChaosSpec]:
        for spec in self.specs:
            if spec.kind == kind:
                return spec
        return None

    def with_seed(self, seed: int) -> "ChaosPlan":
        return replace(self, seed=seed)

    def describe(self) -> str:
        """The compact ``kind:rate[@N],...`` form (round-trips via parse).

        ``scratch_dir`` is deliberately excluded: it is per-run
        orchestration state, not part of what the plan *does*.
        """
        parts = []
        for s in self.specs:
            suffix = "" if s.max_attempt == 1 else (
                "@*" if s.max_attempt is None else f"@{s.max_attempt}"
            )
            parts.append(f"{s.kind}:{s.rate:g}{suffix}")
        return ",".join(parts)

    @classmethod
    def parse(
        cls,
        text: str,
        seed: int = 0,
        scratch_dir: Optional[str] = None,
    ) -> "ChaosPlan":
        """Parse the CLI form ``kind:rate[@N][,kind:rate[@N]...]``.

        ``@N`` caps injection to attempts ``<= N``; ``@*`` removes the
        cap (the default cap is 1 so retries succeed by default).  An
        empty string yields an empty (zero-chaos) plan, which still
        installs the chaos layer — that is the configuration whose
        results must be bit-identical to no chaos layer at all.
        """
        specs = []
        for token in text.split(","):
            token = token.strip()
            if not token:
                continue
            if ":" not in token:
                raise ValueError(
                    f"bad chaos token {token!r}; expected kind:rate[@N]"
                )
            kind, rate_text = token.split(":", 1)
            max_attempt: Optional[int] = 1
            if "@" in rate_text:
                rate_text, cap_text = rate_text.split("@", 1)
                if cap_text.strip() == "*":
                    max_attempt = None
                else:
                    try:
                        max_attempt = int(cap_text)
                    except ValueError as exc:
                        raise ValueError(
                            f"bad attempt cap in {token!r}: {cap_text!r}"
                        ) from exc
            try:
                rate = float(rate_text)
            except ValueError as exc:
                raise ValueError(
                    f"bad chaos rate in {token!r}: {rate_text!r}"
                ) from exc
            specs.append(
                ChaosSpec(
                    kind=kind.strip(), rate=rate, max_attempt=max_attempt
                )
            )
        return cls(specs=tuple(specs), seed=seed, scratch_dir=scratch_dir)

    @classmethod
    def from_env(cls) -> Optional["ChaosPlan"]:
        """Read ``REPRO_CHAOS``/``_SEED``/``_DIR``; None when unset.

        The fork-safe carrier: the CLI (or a test) writes the env vars
        once in the parent and every forked worker inherits them, so the
        store and pool in each process see the same plan.
        """
        text = os.environ.get(CHAOS_ENV)
        if text is None:
            return None
        seed = int(os.environ.get(CHAOS_SEED_ENV, "0"))
        # Scratch dir is orchestration state (kill markers), excluded
        # from plan identity and result-neutral — see describe().
        scratch_dir = os.environ.get(CHAOS_DIR_ENV) or None  # repro-lint: ignore[KEY001]
        return cls.parse(text, seed=seed, scratch_dir=scratch_dir)

    def counts_by_kind(self) -> Dict[str, int]:
        """Number of specs per kind (diagnostics / manifest metadata)."""
        out: Dict[str, int] = {}
        for spec in self.specs:
            out[spec.kind] = out.get(spec.kind, 0) + 1
        return out
