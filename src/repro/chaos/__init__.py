"""Deterministic infrastructure chaos: host-level fault injection.

Where :mod:`repro.faults` breaks the *simulated SoC* (sensors, NPU,
deadlines), this package breaks the *host the experiments run on*: store
reads and writes raise ``OSError``, payload writes tear mid-file, disks
fill up (``ENOSPC``), grid workers get ``SIGKILL``'d, cells run slow.
Every injection draws from private seeded streams
(:class:`~repro.chaos.engine.ChaosEngine`), never from simulation RNG,
so a zero-chaos plan is bit-identical to running with no chaos layer at
all — and the injected faults themselves replay deterministically.

Plans ride on the environment exactly like fault plans
(``REPRO_CHAOS`` / ``REPRO_CHAOS_SEED`` / ``REPRO_CHAOS_DIR``), so forked
grid workers inherit them with no extra plumbing.  The injection seams
live in :class:`~repro.store.store.ArtifactStore` (read/write/mangle
hooks) and the :mod:`repro.experiments.parallel` worker loop (cell-start
hook); the ``chaos`` sweep experiment asserts the recovery invariants
end to end.  Operator guide: ``docs/resilience.md``.
"""

from repro.chaos.engine import (
    ChaosEngine,
    engine_from_env,
    pool_cell_hook,
    reset_engine_cache,
)
from repro.chaos.plan import (
    CHAOS_DIR_ENV,
    CHAOS_ENV,
    CHAOS_KINDS,
    CHAOS_SEED_ENV,
    ChaosPlan,
    ChaosSpec,
)

__all__ = [
    "CHAOS_DIR_ENV",
    "CHAOS_ENV",
    "CHAOS_KINDS",
    "CHAOS_SEED_ENV",
    "ChaosEngine",
    "ChaosPlan",
    "ChaosSpec",
    "engine_from_env",
    "pool_cell_hook",
    "reset_engine_cache",
]
