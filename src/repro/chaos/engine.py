"""The chaos engine: deterministic host-level fault injection.

One :class:`ChaosEngine` owns the randomness of a :class:`ChaosPlan` in
one process.  Streams are private children of ``RandomSource(plan.seed)``
— the store and pool never touch simulation RNG, so chaos cannot shift a
simulation result; it can only make the infrastructure around it fail.

Two stream disciplines coexist:

* **Sequential streams** for store I/O kinds: one child stream per kind,
  drawn at every opportunity (even at rate 0, mirroring
  ``FaultInjector._roll``) so changing one kind's rate never shifts the
  decisions of another.
* **Keyed streams** for per-cell kinds (``worker_kill``, ``slow_cell``):
  the trigger decision for cell ``index`` attempt ``attempt`` comes from
  a fresh ``child(f"chaos/{kind}/{index}/{attempt}")`` stream, so it is
  identical no matter which worker picks the cell up or in what order —
  the fork pool's scheduling stays free.

``kill_after_checkpoint`` fires **once per scratch directory**, enforced
by an exclusive-create marker file, so a killed-and-resumed worker does
not get killed again at its next checkpoint.  Without a scratch dir the
kind is inert.
"""

from __future__ import annotations

import errno
import os
import signal
import time
from typing import Dict, Optional, Tuple

from repro.chaos.plan import (
    CHAOS_DIR_ENV,
    CHAOS_ENV,
    CHAOS_SEED_ENV,
    SLOW_CELL_STALL_S,
    ChaosPlan,
    ChaosSpec,
)
from repro.obs.metrics import MetricsRegistry
from repro.utils.rng import RandomSource


class ChaosEngine:
    """Executes one plan's injection decisions in one process."""

    def __init__(
        self,
        plan: ChaosPlan,
        registry: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.plan = plan
        self.registry = registry
        self._root = RandomSource(plan.seed)
        self._streams: Dict[str, RandomSource] = {
            spec.kind: self._root.child(f"chaos/{spec.kind}")
            for spec in plan.specs
        }
        self.event_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------ rolls
    def _count(self, kind: str) -> None:
        self.event_counts[kind] = self.event_counts.get(kind, 0) + 1
        if self.registry is not None:
            self.registry.counter("chaos_injected_total", kind=kind).inc()

    def _roll(self, spec: ChaosSpec) -> bool:
        """One sequential trigger decision; draws even at rate 0."""
        hit = float(self._streams[spec.kind].uniform()) < spec.rate
        return hit

    def _roll_cell(self, spec: ChaosSpec, index: int, attempt: int) -> bool:
        """One keyed trigger decision — scheduling-independent."""
        if not spec.applies_to_attempt(attempt):
            return False
        stream = self._root.child(f"chaos/{spec.kind}/{index}/{attempt}")
        return float(stream.uniform()) < spec.rate

    # ------------------------------------------------------------------ store seams
    def before_payload_read(self) -> None:
        """Store seam: may raise a transient ``OSError`` before a read."""
        spec = self.plan.spec_for("store_read_error")
        if spec is not None and self._roll(spec):
            self._count("store_read_error")
            raise OSError(errno.EIO, "chaos: injected store read error")

    def before_payload_write(self) -> None:
        """Store seam: may raise before a payload write.

        ``store_write_error`` raises a *transient* EIO (the store's
        bounded retry should absorb it); ``enospc`` raises ENOSPC, which
        the store treats as non-transient and degrades on.
        """
        spec = self.plan.spec_for("enospc")
        if spec is not None and self._roll(spec):
            self._count("enospc")
            raise OSError(errno.ENOSPC, "chaos: injected ENOSPC")
        spec = self.plan.spec_for("store_write_error")
        if spec is not None and self._roll(spec):
            self._count("store_write_error")
            raise OSError(errno.EIO, "chaos: injected store write error")

    def mangle_written_payload(self, path: str) -> None:
        """Store seam: corrupt a freshly-written temp payload file.

        Called *after* the store computed the payload checksum and
        *before* the atomic publish, which is exactly where a real torn
        write lands: the meta file certifies bytes that are no longer on
        disk.  Verify-on-read must catch both mangles and never serve
        the artifact.
        """
        spec = self.plan.spec_for("torn_write")
        if spec is not None and self._roll(spec):
            self._count("torn_write")
            size = os.path.getsize(path)
            with open(path, "ab") as handle:
                handle.truncate(size // 2)
            return
        spec = self.plan.spec_for("corrupt_checksum")
        if spec is not None and self._roll(spec):
            self._count("corrupt_checksum")
            with open(path, "r+b") as handle:
                first = handle.read(1)
                handle.seek(0)
                handle.write(bytes([first[0] ^ 0xFF]) if first else b"\xff")

    # ------------------------------------------------------------------ pool seams
    def on_cell_start(self, index: int, attempt: int) -> None:
        """Pool seam: called by a worker as it starts a cell attempt.

        ``worker_kill`` SIGKILLs the *current process* — the hard crash
        the supervisor must survive; ``slow_cell`` injects a short stall
        so completions reorder.  Decisions are keyed by (index, attempt)
        and therefore identical across pool widths and schedules.
        """
        spec = self.plan.spec_for("slow_cell")
        if spec is not None and self._roll_cell(spec, index, attempt):
            self._count("slow_cell")
            time.sleep(SLOW_CELL_STALL_S)
        spec = self.plan.spec_for("worker_kill")
        if spec is not None and self._roll_cell(spec, index, attempt):
            self._count("worker_kill")
            os.kill(os.getpid(), signal.SIGKILL)

    # ------------------------------------------------------------------ runner seam
    def after_checkpoint_write(self, token: str) -> None:
        """Runner seam: called right after a checkpoint artifact lands.

        Fires at most once per (scratch_dir, token): the first process
        to exclusively create the marker file is SIGKILL'd, any later
        call — including the resumed retry of the same cell — passes
        through.  Inert when the plan has no scratch directory.
        """
        spec = self.plan.spec_for("kill_after_checkpoint")
        if spec is None or self.plan.scratch_dir is None:
            return
        if not self._roll(spec):
            return
        marker = os.path.join(
            self.plan.scratch_dir, f"killed-after-ckpt-{token}"
        )
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return
        os.close(fd)
        self._count("kill_after_checkpoint")
        os.kill(os.getpid(), signal.SIGKILL)


#: Per-process engine cache: (pid, env signature) -> engine.  Keyed by
#: pid so a forked worker builds its own engine (fresh streams) instead
#: of sharing the parent's sequence position.
_ENGINE_CACHE: Dict[Tuple[int, str, str, str], Optional[ChaosEngine]] = {}


def reset_engine_cache() -> None:
    """Drop cached engines (tests that flip the env mid-process)."""
    _ENGINE_CACHE.clear()


def engine_from_env(
    registry: Optional["MetricsRegistry"] = None,
) -> Optional[ChaosEngine]:
    """The process-wide engine for the env-carried plan, or None.

    Reads ``REPRO_CHAOS``/``_SEED``/``_DIR`` lazily and memoizes per
    (pid, env) so repeated store constructions in one worker share one
    stream sequence, while forked children re-derive their own.
    """
    text = os.environ.get(CHAOS_ENV)
    if text is None:
        return None
    key = (
        os.getpid(),
        text,
        os.environ.get(CHAOS_SEED_ENV, "0"),
        # Scratch dir carries once-only kill markers, never results;
        # cell keys fold the plan itself via fault_env_signature.
        os.environ.get(CHAOS_DIR_ENV, ""),  # repro-lint: ignore[KEY001]
    )
    if key not in _ENGINE_CACHE:
        plan = ChaosPlan.from_env()
        # Fork-safe by construction: the cache key leads with os.getpid(),
        # so a forked worker never reads the parent's entry — it builds
        # its own engine with streams at position 0.
        _ENGINE_CACHE[key] = (  # repro-lint: ignore[FORK001]
            ChaosEngine(plan, registry=registry) if plan is not None else None
        )
    return _ENGINE_CACHE[key]


def pool_cell_hook(index: int, attempt: int) -> None:
    """Module-level pool seam (picklable by reference, fork-inherited).

    Called by :mod:`repro.experiments.parallel` workers at the start of
    every cell attempt; a no-op without an env-carried plan.
    """
    engine = engine_from_env()
    if engine is not None:
        engine.on_cell_start(index, attempt)
