"""Grid-search neural architecture search over depth and width (Fig. 3).

The paper decides the MLP topology "by NAS" — a grid search over the
number of hidden layers and neurons per layer, evaluated by held-out loss.
The best topology reported is 4 hidden layers of 64 neurons each.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.nn.layers import build_mlp
from repro.nn.losses import MSELoss
from repro.nn.training import TrainingConfig, train_model
from repro.utils.rng import RandomSource


@dataclass
class GridSearchResult:
    """All grid points with their test losses, plus the winner."""

    losses: Dict[Tuple[int, int], float] = field(default_factory=dict)
    best_depth: int = 0
    best_width: int = 0
    best_loss: float = float("inf")

    def as_rows(self) -> List[Tuple[int, int, float]]:
        """Sorted ``(depth, width, loss)`` rows for reporting."""
        return sorted(
            (depth, width, loss) for (depth, width), loss in self.losses.items()
        )


def grid_search(
    features: np.ndarray,
    labels: np.ndarray,
    test_features: np.ndarray,
    test_labels: np.ndarray,
    depths: Sequence[int] = (1, 2, 3, 4, 5, 6),
    widths: Sequence[int] = (8, 16, 32, 64, 128),
    config: TrainingConfig = TrainingConfig(),
) -> GridSearchResult:
    """Train one model per (depth, width) and pick the lowest test loss."""
    features = np.asarray(features, dtype=float)
    labels = np.asarray(labels, dtype=float)
    input_dim = features.shape[1]
    output_dim = labels.shape[1]
    loss_fn = MSELoss()
    result = GridSearchResult()
    for depth in depths:
        for width in widths:
            rng = RandomSource(config.seed).child(f"nas-{depth}-{width}")
            model = build_mlp(input_dim, output_dim, depth, width, rng)
            train_model(model, features, labels, config)
            test_loss, _ = loss_fn(model.forward(test_features), test_labels)
            result.losses[(depth, width)] = test_loss
            if test_loss < result.best_loss:
                result.best_loss = test_loss
                result.best_depth = depth
                result.best_width = width
    return result
