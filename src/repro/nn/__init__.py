"""A small, dependency-free neural-network library (numpy only).

Implements exactly what the paper's IL model needs: fully-connected layers
with ReLU activations, MSE loss, the Adam optimizer with momentum, an
exponentially decaying learning rate (0.01 * 0.95^epoch), early stopping
with patience, and a grid-search NAS over depth and width (Fig. 3).

The forward pass is deliberately simple (a chain of matmuls), which is also
what makes it trivially batchable on the NPU model in :mod:`repro.npu`.
"""

from repro.nn.layers import Linear, ReLU, Sequential, build_mlp
from repro.nn.losses import MSELoss
from repro.nn.optim import Adam, ExponentialDecay
from repro.nn.training import TrainingConfig, TrainingResult, train_model, train_val_split
from repro.nn.nas import GridSearchResult, grid_search
from repro.nn.serialize import save_model, load_model

__all__ = [
    "Linear",
    "ReLU",
    "Sequential",
    "build_mlp",
    "MSELoss",
    "Adam",
    "ExponentialDecay",
    "TrainingConfig",
    "TrainingResult",
    "train_model",
    "train_val_split",
    "GridSearchResult",
    "grid_search",
    "save_model",
    "load_model",
]
