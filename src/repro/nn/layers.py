"""Fully-connected layers and the sequential container.

Every layer implements ``forward(x)`` and ``backward(grad_out)``; parameters
and their gradients are exposed via ``params()`` as ``(name, value, grad)``
triples consumed by the optimizer.  Arrays are float64 throughout — the
model is tiny (4x64 at its best topology), so numeric robustness beats
speed here; the NPU latency model accounts for quantized inference cost
separately.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.utils.rng import RandomSource

ParamTriple = Tuple[str, np.ndarray, np.ndarray]


class Linear:
    """Affine layer ``y = x @ W + b`` with He-uniform initialization."""

    def __init__(self, in_features: int, out_features: int, rng: RandomSource):
        if in_features <= 0 or out_features <= 0:
            raise ValueError("layer dimensions must be positive")
        bound = np.sqrt(6.0 / in_features)
        self.weight = rng.uniform(-bound, bound, size=(in_features, out_features))
        self.bias = np.zeros(out_features)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._last_input: Optional[np.ndarray] = None

    @property
    def in_features(self) -> int:
        return self.weight.shape[0]

    @property
    def out_features(self) -> int:
        return self.weight.shape[1]

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input dim {self.in_features}, got {x.shape[1]}"
            )
        self._last_input = x
        return x @ self.weight + self.bias

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._last_input is None:
            raise RuntimeError("backward called before forward")
        grad_out = np.atleast_2d(grad_out)
        self.grad_weight += self._last_input.T @ grad_out
        self.grad_bias += grad_out.sum(axis=0)
        return grad_out @ self.weight.T

    def params(self) -> List[ParamTriple]:
        return [
            ("weight", self.weight, self.grad_weight),
            ("bias", self.bias, self.grad_bias),
        ]

    def zero_grad(self) -> None:
        self.grad_weight[:] = 0.0
        self.grad_bias[:] = 0.0


class ReLU:
    """Rectified linear activation."""

    def __init__(self):
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        self._mask = x > 0.0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, grad_out, 0.0)

    def params(self) -> List[ParamTriple]:
        return []

    def zero_grad(self) -> None:
        pass


class Sequential:
    """A chain of layers with whole-model (de)serialization helpers."""

    def __init__(self, layers: List):
        if not layers:
            raise ValueError("Sequential needs at least one layer")
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.atleast_2d(np.asarray(x, dtype=float))
        for layer in self.layers:
            out = layer.forward(out)
        return out

    __call__ = forward

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def params(self) -> List[ParamTriple]:
        triples: List[ParamTriple] = []
        for i, layer in enumerate(self.layers):
            for name, value, grad in layer.params():
                triples.append((f"layer{i}.{name}", value, grad))
        return triples

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    def n_parameters(self) -> int:
        return sum(value.size for _, value, _ in self.params())

    # --- weight snapshots (for early stopping) --------------------------------
    def get_state(self) -> List[np.ndarray]:
        return [value.copy() for _, value, _ in self.params()]

    def set_state(self, state: List[np.ndarray]) -> None:
        triples = self.params()
        if len(state) != len(triples):
            raise ValueError("state does not match model structure")
        for (_, value, _), saved in zip(triples, state):
            if value.shape != saved.shape:
                raise ValueError("state shape mismatch")
            value[:] = saved


def build_mlp(
    input_dim: int,
    output_dim: int,
    hidden_layers: int,
    hidden_width: int,
    rng: RandomSource,
) -> Sequential:
    """Build the paper's MLP: ReLU hidden layers, linear output layer.

    The best topology found by the paper's NAS is 4 hidden layers of 64
    neurons each; :func:`repro.nn.nas.grid_search` reproduces that search.
    """
    if hidden_layers < 0:
        raise ValueError("hidden_layers must be >= 0")
    layers: List = []
    width_in = input_dim
    for _ in range(hidden_layers):
        layers.append(Linear(width_in, hidden_width, rng))
        layers.append(ReLU())
        width_in = hidden_width
    layers.append(Linear(width_in, output_dim, rng))
    return Sequential(layers)
