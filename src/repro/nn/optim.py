"""Optimizers and learning-rate schedules.

The paper uses "Adam optimizer with momentum" and an exponentially decaying
learning rate of ``0.01 * 0.95^epoch``; both are implemented here.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.nn.layers import ParamTriple
from repro.utils.validation import check_in_range, check_positive


class ExponentialDecay:
    """Learning-rate schedule ``lr0 * decay^epoch``."""

    def __init__(self, initial_lr: float = 0.01, decay: float = 0.95):
        check_positive("initial_lr", initial_lr)
        check_in_range("decay", decay, 0.0, 1.0)
        self.initial_lr = initial_lr
        self.decay = decay

    def lr_at(self, epoch: int) -> float:
        if epoch < 0:
            raise ValueError("epoch must be >= 0")
        return self.initial_lr * self.decay**epoch


class Adam:
    """Adam with bias-corrected first (momentum) and second moments."""

    def __init__(
        self,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        check_in_range("beta1", beta1, 0.0, 1.0)
        check_in_range("beta2", beta2, 0.0, 1.0)
        check_positive("eps", eps)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: Dict[str, np.ndarray] = {}
        self._v: Dict[str, np.ndarray] = {}
        self._step = 0

    def step(self, params: List[ParamTriple], lr: float) -> None:
        """Apply one update to every parameter in ``params``."""
        check_positive("lr", lr)
        self._step += 1
        t = self._step
        for name, value, grad in params:
            m = self._m.setdefault(name, np.zeros_like(value))
            v = self._v.setdefault(name, np.zeros_like(value))
            m[:] = self.beta1 * m + (1.0 - self.beta1) * grad
            v[:] = self.beta2 * v + (1.0 - self.beta2) * grad**2
            m_hat = m / (1.0 - self.beta1**t)
            v_hat = v / (1.0 - self.beta2**t)
            value -= lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def reset(self) -> None:
        self._m.clear()
        self._v.clear()
        self._step = 0
