"""Model persistence: save/load trained MLPs as ``.npz`` archives.

The archive stores the topology (layer types and sizes) plus every
parameter tensor, so a model trained by the design-time pipeline can be
shipped to the run-time manager — the moral equivalent of exporting the
trained network to the board's HiAI model format.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.nn.layers import Linear, ReLU, Sequential
from repro.utils.rng import RandomSource


def save_model(model: Sequential, path: str) -> None:
    """Serialize ``model`` (topology + weights) to ``path``."""
    arrays = {}
    layer_kinds: List[str] = []
    for i, layer in enumerate(model.layers):
        if isinstance(layer, Linear):
            layer_kinds.append("linear")
            arrays[f"layer{i}_weight"] = layer.weight
            arrays[f"layer{i}_bias"] = layer.bias
        elif isinstance(layer, ReLU):
            layer_kinds.append("relu")
        else:
            raise TypeError(f"cannot serialize layer type {type(layer).__name__}")
    arrays["layer_kinds"] = np.array(layer_kinds)
    np.savez_compressed(path, **arrays)


def load_model(path: str) -> Sequential:
    """Load a model saved by :func:`save_model`."""
    data = np.load(path, allow_pickle=False)
    kinds = [str(k) for k in data["layer_kinds"]]
    layers: List = []
    throwaway_rng = RandomSource(0)
    for i, kind in enumerate(kinds):
        if kind == "linear":
            weight = data[f"layer{i}_weight"]
            layer = Linear(weight.shape[0], weight.shape[1], throwaway_rng)
            layer.weight[:] = weight
            layer.bias[:] = data[f"layer{i}_bias"]
            layers.append(layer)
        elif kind == "relu":
            layers.append(ReLU())
        else:
            raise ValueError(f"unknown layer kind {kind!r} in {path}")
    return Sequential(layers)
