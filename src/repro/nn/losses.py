"""Loss functions.  The paper trains with plain MSE over all outputs."""

from __future__ import annotations

from typing import Tuple

import numpy as np


class MSELoss:
    """Mean squared error, averaged over batch and output dimensions."""

    def __call__(
        self, prediction: np.ndarray, target: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """Return ``(loss, grad_wrt_prediction)``."""
        prediction = np.atleast_2d(np.asarray(prediction, dtype=float))
        target = np.atleast_2d(np.asarray(target, dtype=float))
        if prediction.shape != target.shape:
            raise ValueError(
                f"shape mismatch: prediction {prediction.shape} vs "
                f"target {target.shape}"
            )
        diff = prediction - target
        loss = float(np.mean(diff**2))
        grad = 2.0 * diff / diff.size
        return loss, grad
