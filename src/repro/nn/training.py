"""Training loop: mini-batches, LR decay, early stopping with patience.

Reproduces the paper's training recipe (Sec. 4.3): Adam with momentum,
exponentially decaying learning rate ``0.01 * 0.95^epoch``, MSE loss, and
early stopping with a patience of 20 epochs (the best-validation weights
are restored on stop).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.nn.layers import Sequential
from repro.nn.losses import MSELoss
from repro.nn.optim import Adam, ExponentialDecay
from repro.utils.rng import RandomSource
from repro.utils.validation import check_in_range, check_positive


@dataclass
class TrainingConfig:
    """Hyperparameters of one training run (paper defaults)."""

    initial_lr: float = 0.01
    lr_decay: float = 0.95
    batch_size: int = 64
    max_epochs: int = 300
    patience: int = 20
    val_fraction: float = 0.2
    seed: int = 0
    #: Relative validation-loss improvement below which an epoch does not
    #: reset the patience counter (otherwise Adam's asymptotic micro-gains
    #: keep early stopping from ever firing).
    min_relative_improvement: float = 1e-4

    def __post_init__(self):
        check_positive("initial_lr", self.initial_lr)
        check_in_range("lr_decay", self.lr_decay, 0.0, 1.0)
        check_positive("batch_size", self.batch_size)
        check_positive("max_epochs", self.max_epochs)
        check_positive("patience", self.patience)
        check_in_range("val_fraction", self.val_fraction, 0.0, 0.9)


@dataclass
class TrainingResult:
    """Outcome of :func:`train_model`."""

    train_losses: List[float] = field(default_factory=list)
    val_losses: List[float] = field(default_factory=list)
    best_val_loss: float = float("inf")
    best_epoch: int = -1
    epochs_run: int = 0
    stopped_early: bool = False


def train_val_split(
    features: np.ndarray,
    labels: np.ndarray,
    val_fraction: float,
    rng: RandomSource,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split into (X_train, Y_train, X_val, Y_val)."""
    features = np.asarray(features, dtype=float)
    labels = np.asarray(labels, dtype=float)
    if len(features) != len(labels):
        raise ValueError("features and labels must have the same length")
    if len(features) < 2:
        raise ValueError("need at least 2 examples to split")
    order = rng.permutation(len(features))
    features, labels = features[order], labels[order]
    n_val = max(1, int(round(val_fraction * len(features)))) if val_fraction > 0 else 0
    if n_val >= len(features):
        n_val = len(features) - 1
    if n_val == 0:
        return features, labels, features, labels
    return (
        features[n_val:],
        labels[n_val:],
        features[:n_val],
        labels[:n_val],
    )


def train_model(
    model: Sequential,
    features: np.ndarray,
    labels: np.ndarray,
    config: TrainingConfig = TrainingConfig(),
) -> TrainingResult:
    """Train ``model`` in place; returns the loss history.

    Early stopping monitors the validation MSE; when it has not improved
    for ``config.patience`` epochs, training stops and the weights of the
    best epoch are restored.
    """
    rng = RandomSource(config.seed).child("training")
    x_train, y_train, x_val, y_val = train_val_split(
        features, labels, config.val_fraction, rng
    )
    loss_fn = MSELoss()
    optimizer = Adam()
    schedule = ExponentialDecay(config.initial_lr, config.lr_decay)
    result = TrainingResult()
    best_state = model.get_state()
    epochs_without_improvement = 0

    for epoch in range(config.max_epochs):
        lr = schedule.lr_at(epoch)
        order = rng.permutation(len(x_train))
        epoch_losses = []
        for start in range(0, len(order), config.batch_size):
            batch = order[start : start + config.batch_size]
            model.zero_grad()
            prediction = model.forward(x_train[batch])
            loss, grad = loss_fn(prediction, y_train[batch])
            model.backward(grad)
            optimizer.step(model.params(), lr)
            epoch_losses.append(loss)
        result.train_losses.append(float(np.mean(epoch_losses)))

        val_loss, _ = loss_fn(model.forward(x_val), y_val)
        result.val_losses.append(val_loss)
        result.epochs_run = epoch + 1

        threshold = result.best_val_loss * (1.0 - config.min_relative_improvement)
        if val_loss < threshold:
            result.best_val_loss = val_loss
            result.best_epoch = epoch
            best_state = model.get_state()
            epochs_without_improvement = 0
        else:
            if val_loss < result.best_val_loss:
                # Track micro-improvements for the restored weights without
                # resetting patience.
                result.best_val_loss = val_loss
                result.best_epoch = epoch
                best_state = model.get_state()
            epochs_without_improvement += 1
            if epochs_without_improvement >= config.patience:
                result.stopped_early = True
                break

    model.set_state(best_state)
    return result
