"""Simulator instrumentation: the :class:`SimObserver` hook surface.

The kernel owns at most one ``SimObserver`` (``Simulator.obs``); every
hook site is guarded by ``if self._obs is not None`` so the disabled path
costs a single attribute test.  The observer only **reads** simulator
state — and deliberately never reads the temperature *sensor*, whose
noise stream the DTM consumes — so enabling observability never changes
simulation results (asserted by the integration tests).

Hook sites and what they record:

========================  ====================================================
``on_step``               step counter, sim-time gauge, per-cluster VF
                          residency, QoS-crossing events + violation time,
                          thermal-threshold crossings (vs. the DTM trigger)
``on_controller``         per-controller invocation counter, wall-clock
                          latency histogram, and one ``ph="X"`` span
``on_migration``          arrival/migration/completion counters and one
                          instant event per decision
``on_dtm``                throttle/release counters + instant events
``on_dvfs_skip``          the QoS-DVFS loop's post-migration skips
``on_overhead``           management CPU time by component
========================  ====================================================
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Dict, Optional

from repro.obs.config import Observability
from repro.obs.export import write_chrome_trace, write_jsonl
from repro.obs.metrics import Counter, MetricsRegistry
from repro.obs.tracer import RingTracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator
    from repro.sim.process import Process
    from repro.sim.trace import MigrationEvent

__all__ = ["SimObserver"]


class SimObserver:
    """One run's tracer + metrics registry, attached to a simulator."""

    def __init__(
        self,
        config: Optional[Observability] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[RingTracer] = None,
    ):
        self.config = config or Observability(enabled=True)
        self.registry = registry or MetricsRegistry()
        self.tracer = tracer or RingTracer(self.config.trace_capacity)
        self.meta: Dict[str, object] = {}
        # Hot counters resolved once (dict lookups off the per-step path).
        self._c_steps: Counter = self.registry.counter("sim_steps_total")
        self._c_qos_time: Counter = self.registry.counter("qos_violation_time_s")
        self._g_sim_time = self.registry.gauge("sim_time_s")
        # Per-run detector state.
        self._qos_ok: Dict[int, bool] = {}
        self._above_trigger = False
        self._trigger_temp_c: Optional[float] = None

    # ------------------------------------------------------------------ hooks
    def on_step(self, sim: "Simulator", dt_s: float) -> None:
        """Step-boundary bookkeeping; called once per ``Simulator.step``."""
        self._c_steps.inc()
        self._g_sim_time.set(sim.now_s)
        registry = self.registry
        for cluster_name, level in sim.vf_levels().items():
            registry.counter(
                "vf_residency_s",
                cluster=cluster_name,
                freq_mhz=round(level.frequency_hz / 1e6),
            ).inc(dt_s)
        if self.config.qos_events:
            self._detect_qos_crossings(sim, dt_s)
        if self.config.thermal_events:
            self._detect_thermal_crossing(sim)

    def _detect_qos_crossings(self, sim: "Simulator", dt_s: float) -> None:
        qos_ok = self._qos_ok
        for process in sim.running_processes():
            ok = sim.qos_satisfied(process)
            previous = qos_ok.get(process.pid)
            if previous is not None and ok is not previous:
                direction = "recovered" if ok else "violated"
                self.registry.counter(
                    "qos_crossings_total", direction=direction
                ).inc()
                self.tracer.emit(
                    f"qos.{direction}",
                    ts_s=sim.now_s,
                    cat="qos",
                    args={
                        "pid": process.pid,
                        "app": process.app.name,
                        "smoothed_ips": process.smoothed_ips,
                        "target_ips": process.qos_target_ips,
                    },
                )
            qos_ok[process.pid] = ok
            if not ok:
                self._c_qos_time.inc(dt_s)

    def _detect_thermal_crossing(self, sim: "Simulator") -> None:
        # Ground-truth zone temperature: reading the *sensor* here would
        # consume its noise stream and perturb the DTM — never do that.
        trigger = self._trigger_temp_c
        if trigger is None:
            trigger = self._trigger_temp_c = sim.platform.dtm.trigger_temp_c
        above = sim.zone_temp_c() >= trigger
        if above is not self._above_trigger:
            direction = "above" if above else "below"
            self.registry.counter(
                "thermal_threshold_crossings_total", direction=direction
            ).inc()
            self.tracer.emit(
                f"thermal.{direction}_trigger",
                ts_s=sim.now_s,
                cat="thermal",
                args={"zone_temp_c": sim.zone_temp_c(), "trigger_c": trigger},
            )
            self._above_trigger = above

    def on_controller(
        self, sim: "Simulator", name: str, wall_latency_s: float
    ) -> None:
        """One controller callback completed (wall latency measured)."""
        self.registry.counter(
            "controller_invocations_total", controller=name
        ).inc()
        self.registry.histogram(
            "controller_latency_s", controller=name
        ).observe(wall_latency_s)
        self.tracer.emit(
            name,
            ts_s=sim.now_s,
            ph="X",
            cat="controller",
            dur_s=wall_latency_s,
            args={"wall_us": wall_latency_s * 1e6},
        )

    def on_migration(self, sim: "Simulator", event: "MigrationEvent") -> None:
        """An arrival (``from_core is None``) or an executed migration."""
        if event.from_core is None:
            self.registry.counter("arrivals_total").inc()
            name = "arrival"
        else:
            self.registry.counter("migrations_total").inc()
            name = "migration"
        self.tracer.emit(
            name,
            ts_s=event.time_s,
            cat="migration",
            args={
                "pid": event.pid,
                "app": event.app_name,
                "from_core": event.from_core,
                "to_core": event.to_core,
            },
        )

    def on_completion(self, sim: "Simulator", process: "Process") -> None:
        self.registry.counter("completions_total").inc()
        self.tracer.emit(
            "completion",
            ts_s=sim.now_s,
            cat="migration",
            args={"pid": process.pid, "app": process.app.name},
        )

    def on_dtm(self, sim: "Simulator", throttled: bool) -> None:
        name = (
            "dtm_throttle_events_total" if throttled
            else "dtm_release_events_total"
        )
        self.registry.counter(name).inc()
        self.tracer.emit(
            "dtm.throttle" if throttled else "dtm.release",
            ts_s=sim.now_s,
            cat="thermal",
        )

    def on_dvfs_skip(self, sim: "Simulator") -> None:
        self.registry.counter("dvfs_skips_total").inc()
        self.tracer.emit("dvfs.skip", ts_s=sim.now_s, cat="controller")

    def on_overhead(self, component: str, cpu_seconds: float) -> None:
        self.registry.counter("overhead_cpu_s", component=component).inc(
            cpu_seconds
        )

    # ------------------------------------------------------------------ export
    def finalize(self, sim: "Simulator", wall_time_s: float = 0.0) -> None:
        """Record end-of-run gauges (sim time, wall time, tracer stats)."""
        self._g_sim_time.set(sim.now_s)
        self.registry.gauge("wall_time_s").set(wall_time_s)
        stats = self.tracer.stats()
        trace_recorded = self.registry.counter("trace_events_recorded_total")
        trace_recorded.inc(max(0.0, stats.recorded - trace_recorded.value))
        trace_dropped = self.registry.counter("trace_events_dropped_total")
        trace_dropped.inc(max(0.0, stats.dropped - trace_dropped.value))
        self._publish_faults(sim)

    def _publish_faults(self, sim: "Simulator") -> None:
        """Publish fault-layer counters, if a fault runtime is attached.

        Duck-typed through ``sim.faults`` (no import of the faults package:
        the kernel already depends on it, the observer need not).  Called
        from :meth:`finalize`, so the counters reflect the whole run.
        """
        faults = getattr(sim, "faults", None)
        if faults is None:
            return
        registry = self.registry
        for kind, count in sorted(faults.injector.injected_counts.items()):
            if count:
                registry.counter("faults_injected_total", kind=kind).inc(count)
        sensor = faults.sensor
        if sensor is not None and sensor.held_reads:
            registry.counter("sensor_dropout_held_reads_total").inc(
                sensor.held_reads
            )
        degradation = faults.degradation
        for (path, state), count in sorted(
            degradation.transition_counts.items()
        ):
            registry.counter(
                "degradation_transitions_total", path=path, state=state
            ).inc(count)
        registry.gauge("safe_mode_time_s").set(
            degradation.safe_mode_time_s(sim.now_s)
        )
        if degradation.cpu_fallback_invocations:
            registry.counter("npu_cpu_fallback_invocations_total").inc(
                degradation.cpu_fallback_invocations
            )
        holds = faults.event_counts.get("qos_dvfs.hold", 0)
        if holds:
            registry.counter("dvfs_dropout_holds_total").inc(holds)
        failsafes = faults.event_counts.get("dtm.failsafe", 0)
        if failsafes:
            registry.counter("dtm_failsafe_events_total").inc(failsafes)
        for event in degradation.events:
            self.tracer.emit(
                f"degrade.{event.path}.{event.state}",
                ts_s=event.now_s,
                cat="faults",
                args={"detail": event.detail},
            )

    def export(self, out_dir: str, label: str) -> Dict[str, str]:
        """Write ``<label>.events.jsonl`` + ``<label>.trace.json``.

        Returns a map of artifact kind to written path.
        """
        events = self.tracer.events()
        meta = dict(self.meta)
        meta["tracer"] = self.tracer.stats().as_dict()
        return {
            "events_jsonl": write_jsonl(
                events, os.path.join(out_dir, f"{label}.events.jsonl")
            ),
            "chrome_trace": write_chrome_trace(
                events, os.path.join(out_dir, f"{label}.trace.json"), meta=meta
            ),
        }
