"""Trace exporters: JSONL event logs and Chrome trace-event JSON.

Two formats from the same :class:`~repro.obs.tracer.TraceEvent` stream:

* **JSONL** (one JSON object per line) — grep/jq-friendly, append-safe,
  the format to post-process programmatically;
* **Chrome trace-event JSON** — load in ``chrome://tracing`` (or
  https://ui.perfetto.dev) to see spans and instants on a zoomable
  timeline.  Timestamps are *simulated* microseconds; span durations are
  the *wall-clock* cost of the span scaled to microseconds, so "wide"
  controller invocations are literally the slow ones.

Both writers create the parent directory on demand and return the path
they wrote, so callers can log artifact locations.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional, Sequence

from repro.obs.tracer import TraceEvent

__all__ = [
    "event_to_dict",
    "write_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
]

#: Chrome trace category -> synthetic thread id (one row per category).
_CATEGORY_TIDS: Dict[str, int] = {
    "sim": 0,
    "controller": 1,
    "migration": 2,
    "qos": 3,
    "thermal": 4,
}
_DEFAULT_TID = 9


def event_to_dict(event: TraceEvent) -> Dict[str, object]:
    """A stable JSON-serialisable view of one event (JSONL row)."""
    row: Dict[str, object] = {
        "name": event.name,
        "cat": event.cat,
        "ph": event.ph,
        "ts_s": event.ts_s,
    }
    if event.ph == "X":
        row["dur_s"] = event.dur_s
    if event.args:
        row["args"] = event.args
    return row


def _ensure_parent(path: str) -> None:
    parent = os.path.dirname(os.path.abspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)


def write_jsonl(events: Iterable[TraceEvent], path: str) -> str:
    """Write one JSON object per event; returns ``path``."""
    _ensure_parent(path)
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event_to_dict(event), sort_keys=True))
            handle.write("\n")
    return path


def _chrome_event(event: TraceEvent) -> Dict[str, object]:
    entry: Dict[str, object] = {
        "name": event.name,
        "cat": event.cat,
        "ph": event.ph,
        # Chrome expects microseconds; the simulated clock is the x-axis.
        "ts": event.ts_s * 1e6,
        "pid": 0,
        "tid": _CATEGORY_TIDS.get(event.cat, _DEFAULT_TID),
    }
    if event.ph == "X":
        entry["dur"] = event.dur_s * 1e6
    if event.ph == "i":
        entry["s"] = "t"  # instant scope: thread
    if event.args:
        entry["args"] = event.args
    return entry


def to_chrome_trace(
    events: Sequence[TraceEvent],
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Build the ``chrome://tracing`` document for ``events``."""
    trace_events: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "args": {"name": "repro simulator"},
        }
    ]
    for cat, tid in sorted(_CATEGORY_TIDS.items(), key=lambda item: item[1]):
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": cat},
            }
        )
    trace_events.extend(_chrome_event(e) for e in events)
    doc: Dict[str, object] = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
    }
    if meta:
        doc["metadata"] = meta
    return doc


def write_chrome_trace(
    events: Sequence[TraceEvent],
    path: str,
    meta: Optional[Dict[str, object]] = None,
) -> str:
    """Write the Chrome trace JSON document; returns ``path``."""
    _ensure_parent(path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(events, meta), handle)
        handle.write("\n")
    return path
