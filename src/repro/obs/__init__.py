"""Observability: structured tracing, metrics, and run manifests.

The subsystem the operator's guide (``docs/observability.md``) documents:

* :mod:`repro.obs.config` — the ``REPRO_TRACE`` gate and the
  :class:`Observability` config object (off by default; zero hot-path cost
  when disabled);
* :mod:`repro.obs.tracer` — ring-buffer structured event/span tracer;
* :mod:`repro.obs.metrics` — counters/gauges/histograms registry with the
  canonical :data:`~repro.obs.metrics.METRIC_SPECS` glossary;
* :mod:`repro.obs.manifest` — per-run provenance manifests;
* :mod:`repro.obs.export` — JSONL and Chrome ``chrome://tracing`` export;
* :mod:`repro.obs.instrument` — the :class:`SimObserver` hook surface the
  kernel drives.
"""

from repro.obs.config import (
    DEFAULT_TRACE_DIR,
    Observability,
    TRACE_DIR_ENV,
    TRACE_ENV,
    tracing_enabled,
)
from repro.obs.export import (
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.instrument import SimObserver
from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    config_hash,
    git_revision,
    host_fingerprint,
    merge_manifests,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    METRIC_SPECS,
    MetricSpec,
    MetricsRegistry,
    metric_names,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    RingTracer,
    TraceEvent,
    TracerStats,
)

__all__ = [
    "DEFAULT_TRACE_DIR",
    "TRACE_DIR_ENV",
    "TRACE_ENV",
    "Observability",
    "tracing_enabled",
    "TraceEvent",
    "TracerStats",
    "RingTracer",
    "NullTracer",
    "NULL_TRACER",
    "MetricSpec",
    "METRIC_SPECS",
    "metric_names",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MANIFEST_SCHEMA_VERSION",
    "RunManifest",
    "config_hash",
    "git_revision",
    "host_fingerprint",
    "merge_manifests",
    "SimObserver",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
