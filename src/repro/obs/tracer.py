"""Low-overhead structured event/span tracer with ring-buffer storage.

The tracer stores :class:`TraceEvent` records in a fixed-size ring buffer:
``emit`` is an O(1) slot write, so instrumentation cost is flat no matter
how long a run is, and memory is bounded by ``capacity``.  When the buffer
wraps, the oldest events are overwritten and counted in ``dropped`` — the
tracer never raises and never grows.

Event model (a deliberate subset of the Chrome trace-event phases, see
``repro.obs.export``):

* ``ph="i"`` — **instant** events (a migration, a QoS crossing, a
  DTM throttle);
* ``ph="X"`` — **complete spans** with a duration (a controller
  invocation); timestamps are *simulated* time, durations are the
  *wall-clock* cost of the span (the interesting quantity for "where does
  wall time go" questions — simulated durations of controller calls are
  zero by construction);
* ``ph="C"`` — **counter** samples (optional; most counters live in the
  metrics registry instead).

:data:`NULL_TRACER` is a shared no-op sink with the same surface, used
when code wants to trace unconditionally and let configuration decide
whether anything is recorded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.utils.validation import check_positive

__all__ = [
    "TraceEvent",
    "TracerStats",
    "RingTracer",
    "NullTracer",
    "NULL_TRACER",
]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One structured event on the simulated timeline."""

    name: str
    cat: str
    ph: str
    #: Simulated-time timestamp of the event.
    ts_s: float
    #: Span duration; **wall-clock** seconds for ``ph="X"`` spans, 0 else.
    dur_s: float = 0.0
    args: Optional[Dict[str, object]] = None


@dataclass(frozen=True)
class TracerStats:
    """Bookkeeping snapshot of one tracer."""

    capacity: int
    recorded: int
    dropped: int

    @property
    def stored(self) -> int:
        """Events currently held in the buffer."""
        return min(self.recorded, self.capacity)

    def as_dict(self) -> Dict[str, int]:
        return {
            "capacity": self.capacity,
            "recorded": self.recorded,
            "dropped": self.dropped,
            "stored": self.stored,
        }


class RingTracer:
    """Fixed-capacity event sink; oldest events drop when full."""

    enabled = True

    def __init__(self, capacity: int = 65536):
        check_positive("capacity", capacity)
        self.capacity = int(capacity)
        self._buf: List[Optional[TraceEvent]] = [None] * self.capacity
        self._next = 0
        self.recorded = 0
        self.dropped = 0

    def emit(
        self,
        name: str,
        ts_s: float,
        ph: str = "i",
        cat: str = "sim",
        dur_s: float = 0.0,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """Record one event (O(1); overwrites the oldest slot when full)."""
        if self._buf[self._next] is not None:
            self.dropped += 1
        self._buf[self._next] = TraceEvent(
            name=name, cat=cat, ph=ph, ts_s=ts_s, dur_s=dur_s, args=args
        )
        self._next = (self._next + 1) % self.capacity
        self.recorded += 1

    def events(self) -> List[TraceEvent]:
        """Stored events, oldest first."""
        if self.recorded < self.capacity:
            head = self._buf[: self._next]
            return [e for e in head if e is not None]
        ordered = self._buf[self._next :] + self._buf[: self._next]
        return [e for e in ordered if e is not None]

    def stats(self) -> TracerStats:
        return TracerStats(
            capacity=self.capacity, recorded=self.recorded, dropped=self.dropped
        )

    def clear(self) -> None:
        self._buf = [None] * self.capacity
        self._next = 0
        self.recorded = 0
        self.dropped = 0


class NullTracer:
    """A no-op tracer with the :class:`RingTracer` surface."""

    enabled = False
    capacity = 0
    recorded = 0
    dropped = 0

    def emit(
        self,
        name: str,
        ts_s: float,
        ph: str = "i",
        cat: str = "sim",
        dur_s: float = 0.0,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """Discard the event."""

    def events(self) -> List[TraceEvent]:
        return []

    def stats(self) -> TracerStats:
        return TracerStats(capacity=0, recorded=0, dropped=0)

    def clear(self) -> None:
        """Nothing to clear."""


#: Shared no-op sink — safe to emit into unconditionally.
NULL_TRACER = NullTracer()
