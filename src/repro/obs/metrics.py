"""The counters / gauges / histograms metrics registry.

Every metric this repository emits is declared **once**, in
:data:`METRIC_SPECS` — name, kind, unit, description, and the paper figure
it supports.  A :class:`MetricsRegistry` only instantiates declared names
(unknown names raise ``KeyError``), which keeps the glossary in
``docs/observability.md`` honest: the docs-consistency test asserts that
every metric named there exists here, and vice versa.

Naming convention (prometheus-flavoured, unit-suffixed per the repro-lint
UNIT rules): monotonic counts end in ``_total``, time accumulators in
``_s``, temperatures in ``_c``.  Instruments may carry **labels**
(``counter("migrations_total")`` vs
``counter("vf_residency_s", cluster="big", freq_mhz=2362)``); each distinct
label set is its own instrument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "MetricSpec",
    "METRIC_SPECS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metric_names",
]


@dataclass(frozen=True)
class MetricSpec:
    """Declaration of one metric family."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    unit: str
    description: str
    #: Paper figure / section this metric feeds ("" when repo-internal).
    figure: str = ""


_SPECS: Tuple[MetricSpec, ...] = (
    # --- kernel ---------------------------------------------------------
    MetricSpec(
        "sim_steps_total", "counter", "steps",
        "Simulation steps executed (one per dt).", "overhead baseline",
    ),
    MetricSpec(
        "sim_time_s", "gauge", "s",
        "Simulated time at the last observation.", "",
    ),
    MetricSpec(
        "wall_time_s", "gauge", "s",
        "Wall-clock time of the run (set by the run engine).", "",
    ),
    MetricSpec(
        "arrivals_total", "counter", "events",
        "Application arrivals admitted to a core.", "Fig. 8",
    ),
    MetricSpec(
        "completions_total", "counter", "events",
        "Applications that finished their work.", "Fig. 8",
    ),
    MetricSpec(
        "migrations_total", "counter", "events",
        "Executed inter-core migrations (arrivals excluded).", "Fig. 5",
    ),
    # --- controllers ----------------------------------------------------
    MetricSpec(
        "controller_invocations_total", "counter", "events",
        "Periodic controller callbacks fired, labelled by controller.",
        "Fig. 12",
    ),
    MetricSpec(
        "controller_latency_s", "histogram", "s",
        "Wall-clock latency of one controller callback, by controller.",
        "Fig. 12",
    ),
    MetricSpec(
        "dvfs_skips_total", "counter", "events",
        "QoS-DVFS iterations skipped after a migration (cold caches).",
        "Sec. 5.2",
    ),
    MetricSpec(
        "overhead_cpu_s", "counter", "s",
        "Management CPU time charged on the manager core, by component.",
        "Fig. 12",
    ),
    # --- QoS ------------------------------------------------------------
    MetricSpec(
        "qos_violation_time_s", "counter", "s",
        "Summed per-process time spent below the QoS threshold.", "Fig. 8",
    ),
    MetricSpec(
        "qos_crossings_total", "counter", "events",
        "QoS-threshold crossings (either direction), by direction.",
        "Fig. 8",
    ),
    # --- thermal / DVFS -------------------------------------------------
    MetricSpec(
        "vf_residency_s", "counter", "s",
        "Simulated time each cluster spent at each VF level.", "Fig. 10",
    ),
    MetricSpec(
        "thermal_threshold_crossings_total", "counter", "events",
        "Zone temperature crossings of the DTM trigger, by direction.",
        "Figs. 1/7",
    ),
    MetricSpec(
        "dtm_throttle_events_total", "counter", "events",
        "DTM frequency-cap tightenings.", "Fig. 8",
    ),
    MetricSpec(
        "dtm_release_events_total", "counter", "events",
        "DTM frequency-cap relaxations.", "",
    ),
    # --- run summary (published from metrics.summary) -------------------
    MetricSpec(
        "run_mean_temp_c", "gauge", "degC",
        "Time-averaged sensor temperature of the run.", "Fig. 8",
    ),
    MetricSpec(
        "run_peak_temp_c", "gauge", "degC",
        "Peak sensor temperature of the run.", "Fig. 8",
    ),
    MetricSpec(
        "run_qos_violations", "gauge", "apps",
        "Applications judged QoS-violating over the whole run.", "Fig. 8",
    ),
    MetricSpec(
        "run_violation_fraction", "gauge", "ratio",
        "Fraction of applications violating their QoS target.", "Fig. 8",
    ),
    MetricSpec(
        "run_migrations", "gauge", "events",
        "Migrations counted by the run summary (cross-check of "
        "migrations_total).", "Fig. 5",
    ),
    MetricSpec(
        "run_mean_utilization", "gauge", "ratio",
        "Mean busy-core fraction over the run.", "",
    ),
    # --- faults / degradation -------------------------------------------
    MetricSpec(
        "faults_injected_total", "counter", "events",
        "Fault activations drawn by the injector, by fault kind.",
        "robustness",
    ),
    MetricSpec(
        "sensor_dropout_held_reads_total", "counter", "events",
        "Sensor reads answered from the held EMA during dropouts.",
        "robustness",
    ),
    MetricSpec(
        "degradation_transitions_total", "counter", "events",
        "Degradation state-machine transitions, by path and state.",
        "robustness",
    ),
    MetricSpec(
        "safe_mode_time_s", "gauge", "s",
        "Simulated time spent in DVFS-only safe mode.", "robustness",
    ),
    MetricSpec(
        "npu_cpu_fallback_invocations_total", "counter", "events",
        "Migration-policy invocations served by CPU inference fallback.",
        "robustness",
    ),
    MetricSpec(
        "dvfs_dropout_holds_total", "counter", "events",
        "QoS-DVFS iterations holding actuation through a sensor dropout.",
        "robustness",
    ),
    MetricSpec(
        "dtm_failsafe_events_total", "counter", "events",
        "DTM fail-safe throttles engaged on a stuck thermal sensor.",
        "robustness",
    ),
    # --- experiment worker pool -----------------------------------------
    MetricSpec(
        "worker_retries_total", "counter", "events",
        "Grid cells requeued after a worker crash or hang, by reason.", "",
    ),
    MetricSpec(
        "worker_failures_total", "counter", "events",
        "Grid cells abandoned after exhausting retries, by reason.", "",
    ),
    MetricSpec(
        "worker_pool_clamped_total", "counter", "events",
        "Worker-pool launches clamped because cells < requested workers.",
        "",
    ),
    # --- batched lockstep backend ----------------------------------------
    MetricSpec(
        "batch_cells", "gauge", "cells",
        "Cells advanced in lockstep by one batched-backend group.", "",
    ),
    MetricSpec(
        "batch_fill_ratio", "gauge", "ratio",
        "Active-cell occupancy of the batched backend's lockstep ticks.", "",
    ),
    MetricSpec(
        "batch_fallback_cells_total", "counter", "events",
        "Grid cells routed to the scalar kernel by the batched backend, "
        "by reason.", "",
    ),
    # --- artifact store -------------------------------------------------
    MetricSpec(
        "store_hits_total", "counter", "events",
        "Artifact-store lookups answered from a verified entry, by kind.",
        "",
    ),
    MetricSpec(
        "store_misses_total", "counter", "events",
        "Artifact-store lookups that required recomputation, by kind.", "",
    ),
    MetricSpec(
        "store_evicted_corrupt_total", "counter", "events",
        "Store entries evicted on failed verification, by reason "
        "(meta/schema/checksum/load).", "",
    ),
    MetricSpec(
        "store_bytes", "gauge", "bytes",
        "Payload bytes written to the artifact store this run.", "",
    ),
    MetricSpec(
        "store_retries_total", "counter", "events",
        "Transient store I/O errors absorbed by bounded retry, by op "
        "(read/write).", "",
    ),
    MetricSpec(
        "store_degraded", "gauge", "flag",
        "1 once the store fell back to no-cache in-memory mode (unusable "
        "cache directory); 0 otherwise.", "",
    ),
    # --- chaos / checkpointing ------------------------------------------
    MetricSpec(
        "chaos_injected_total", "counter", "events",
        "Host-level faults injected by the chaos engine, by kind.", "",
    ),
    MetricSpec(
        "checkpoint_writes_total", "counter", "events",
        "Simulator checkpoints written by the runner's periodic cadence.",
        "",
    ),
    MetricSpec(
        "checkpoint_restores_total", "counter", "events",
        "Runs resumed from a stored checkpoint instead of starting fresh.",
        "",
    ),
    # --- tracer / tooling ----------------------------------------------
    MetricSpec(
        "trace_events_recorded_total", "counter", "events",
        "Events emitted into the ring tracer.", "",
    ),
    MetricSpec(
        "trace_events_dropped_total", "counter", "events",
        "Events overwritten after the ring buffer wrapped.", "",
    ),
    MetricSpec(
        "report_section_wall_s", "gauge", "s",
        "Wall-clock time of one report section, by section.", "",
    ),
    MetricSpec(
        "report_section_failures_total", "counter", "events",
        "Report sections whose experiment raised (rendered as a SECTION "
        "FAILED entry in the partial report), by section.", "",
    ),
)

#: The canonical catalog: metric name -> spec.
METRIC_SPECS: Dict[str, MetricSpec] = {spec.name: spec for spec in _SPECS}


def metric_names() -> List[str]:
    """All declared metric names, sorted."""
    return sorted(METRIC_SPECS)


LabelItems = Tuple[Tuple[str, object], ...]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


#: Default histogram bucket upper bounds: controller latencies live in the
#: microsecond-to-second range; a final +inf bucket is implicit.
DEFAULT_BUCKET_BOUNDS_S: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0,
)


class Histogram:
    """Running count/sum/min/max plus fixed cumulative-style buckets."""

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKET_BOUNDS_S):
        self.bounds: Tuple[float, ...] = tuple(bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be ascending")
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
        }


def _label_key(labels: Dict[str, object]) -> LabelItems:
    return tuple(sorted(labels.items()))


def format_metric(name: str, labels: LabelItems) -> str:
    """Render ``name{k=v,...}`` (stable order) for snapshots and manifests."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


@dataclass
class MetricsRegistry:
    """One run's instruments, keyed by (declared name, label set)."""

    strict: bool = True
    _counters: Dict[Tuple[str, LabelItems], Counter] = field(default_factory=dict)
    _gauges: Dict[Tuple[str, LabelItems], Gauge] = field(default_factory=dict)
    _histograms: Dict[Tuple[str, LabelItems], Histogram] = field(
        default_factory=dict
    )

    def _check(self, name: str, kind: str) -> None:
        if not self.strict:
            return
        spec = METRIC_SPECS.get(name)
        if spec is None:
            raise KeyError(
                f"metric {name!r} is not declared in METRIC_SPECS; add it to "
                "repro/obs/metrics.py (and to docs/observability.md)"
            )
        if spec.kind != kind:
            raise KeyError(
                f"metric {name!r} is declared as a {spec.kind}, not a {kind}"
            )

    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, _label_key(labels))
        inst = self._counters.get(key)
        if inst is None:
            self._check(name, "counter")
            inst = self._counters[key] = Counter()
        return inst

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, _label_key(labels))
        inst = self._gauges.get(key)
        if inst is None:
            self._check(name, "gauge")
            inst = self._gauges[key] = Gauge()
        return inst

    def histogram(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_BUCKET_BOUNDS_S,
        **labels: object,
    ) -> Histogram:
        key = (name, _label_key(labels))
        inst = self._histograms.get(key)
        if inst is None:
            self._check(name, "histogram")
            inst = self._histograms[key] = Histogram(bounds)
        return inst

    # ------------------------------------------------------------------ export
    def snapshot(self) -> Dict[str, object]:
        """Flat ``rendered-name -> value`` map (histograms as dicts)."""
        out: Dict[str, object] = {}
        for (name, labels), counter in sorted(self._counters.items()):
            out[format_metric(name, labels)] = counter.value
        for (name, labels), gauge in sorted(self._gauges.items()):
            out[format_metric(name, labels)] = gauge.value
        for (name, labels), histogram in sorted(self._histograms.items()):
            out[format_metric(name, labels)] = histogram.as_dict()
        return out

    def scalar_snapshot(self) -> Dict[str, float]:
        """Counters and gauges only — the manifest-friendly subset."""
        out: Dict[str, float] = {}
        for (name, labels), counter in sorted(self._counters.items()):
            out[format_metric(name, labels)] = counter.value
        for (name, labels), gauge in sorted(self._gauges.items()):
            out[format_metric(name, labels)] = gauge.value
        return out

    def histogram_items(
        self, name: Optional[str] = None
    ) -> List[Tuple[str, Dict[str, object], Histogram]]:
        """``(family name, labels, histogram)`` triples, optionally filtered."""
        return [
            (family, dict(labels), histogram)
            for (family, labels), histogram in sorted(self._histograms.items())
            if name is None or family == name
        ]

    def names_in_use(self) -> List[str]:
        """Distinct metric family names with at least one instrument."""
        seen = {name for name, _ in self._counters}
        seen.update(name for name, _ in self._gauges)
        seen.update(name for name, _ in self._histograms)
        return sorted(seen)
