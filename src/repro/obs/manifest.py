"""Run manifests: the provenance record written next to experiment output.

A :class:`RunManifest` answers "what exactly produced this result?": the
experiment and run label, the seed, a stable hash of the configuration,
the host fingerprint (python/numpy/OS), the git revision, wall and
simulated time, tracer bookkeeping, the run-summary metrics (the same
numbers :mod:`repro.metrics.summary` reports), and a scalar snapshot of
the metrics registry.

Manifests are plain JSON (one file per run, ``*.manifest.json``) and
round-trip losslessly through :meth:`RunManifest.write` /
:meth:`RunManifest.load`.  Experiment grids that fan out over the fork
pool (:mod:`repro.experiments.parallel`) have each worker write its own
per-cell manifest; :func:`merge_manifests` folds those fragments into one
grid-level manifest in the parent, so the merge is scheduling-independent.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import platform as host_platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "RunManifest",
    "canonical_json",
    "config_hash",
    "git_revision",
    "host_fingerprint",
    "merge_manifests",
]

#: Bump when the manifest layout changes incompatibly.
MANIFEST_SCHEMA_VERSION = 1

_GIT_TIMEOUT_S = 5.0


def _jsonable(obj: object) -> object:
    """Best-effort canonical JSON view of a config object."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


def canonical_json(config: object) -> str:
    """Canonical (sorted-key) JSON serialization of a config object.

    The single definition of "canonical" shared by manifest config hashes
    and the content-addressed artifact store (:mod:`repro.store`): two
    configs with the same canonical JSON are the same config.
    """
    return json.dumps(_jsonable(config), sort_keys=True)


def config_hash(config: object) -> str:
    """Stable short hash of a configuration (dataclass, dict, ...)."""
    canonical = canonical_json(config)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def git_revision(cwd: Optional[str] = None) -> str:
    """The current git commit hash, or ``"unknown"`` outside a checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=_GIT_TIMEOUT_S,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if proc.returncode != 0:
        return "unknown"
    return proc.stdout.strip() or "unknown"


def host_fingerprint() -> Dict[str, str]:
    """Python / numpy / OS identification for the manifest."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        numpy_version = "unavailable"
    return {
        "python": sys.version.split()[0],
        "numpy": numpy_version,
        "os": host_platform.platform(),
    }


@dataclass
class RunManifest:
    """Provenance + headline metrics of one run (or one merged grid)."""

    experiment: str
    label: str
    seed: Optional[int] = None
    config_hash: str = ""
    git_rev: str = ""
    host: Dict[str, str] = field(default_factory=dict)
    created_unix_s: float = 0.0
    wall_time_s: float = 0.0
    sim_time_s: float = 0.0
    tracer: Dict[str, int] = field(default_factory=dict)
    #: Run-summary metrics — matches :func:`repro.metrics.summary.summary_metrics`.
    summary: Dict[str, float] = field(default_factory=dict)
    #: Scalar snapshot of the metrics registry (counters + gauges).
    metrics: Dict[str, float] = field(default_factory=dict)
    #: Free-form extras (cell coordinates, technique, workload name, ...).
    extra: Dict[str, object] = field(default_factory=dict)
    schema_version: int = MANIFEST_SCHEMA_VERSION

    @classmethod
    def create(
        cls,
        experiment: str,
        label: str,
        seed: Optional[int] = None,
        config: Optional[object] = None,
        **kwargs: object,
    ) -> "RunManifest":
        """Build a manifest with provenance fields filled in."""
        return cls(
            experiment=experiment,
            label=label,
            seed=seed,
            config_hash=config_hash(config) if config is not None else "",
            git_rev=git_revision(),
            host=host_fingerprint(),
            # Manifest creation time is provenance metadata, not a result.
            created_unix_s=time.time(),  # repro-lint: ignore[DET003]
            **kwargs,  # type: ignore[arg-type]
        )

    # ------------------------------------------------------------------ io
    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RunManifest":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})

    def write(self, path: str) -> str:
        """Write the manifest as pretty JSON; returns ``path``."""
        parent = os.path.dirname(os.path.abspath(path))
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    @classmethod
    def load(cls, path: str) -> "RunManifest":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


def merge_manifests(
    fragments: Sequence[RunManifest], experiment: str, label: str = "grid"
) -> RunManifest:
    """Fold per-cell manifests into one grid-level manifest.

    Wall time, simulated time, and tracer counts are summed; summary and
    registry metrics are kept per cell under ``extra["cells"]`` (averaging
    across heterogeneous cells would hide exactly the per-cell variation
    the manifests exist to expose).  Fragments are ordered by label so the
    merge is independent of worker scheduling.
    """
    ordered = sorted(fragments, key=lambda m: m.label)
    merged = RunManifest.create(experiment=experiment, label=label)
    tracer_totals: Dict[str, int] = {}
    cells: List[Dict[str, object]] = []
    for fragment in ordered:
        merged.wall_time_s += fragment.wall_time_s
        merged.sim_time_s += fragment.sim_time_s
        for key, value in fragment.tracer.items():
            tracer_totals[key] = tracer_totals.get(key, 0) + int(value)
        cells.append(
            {
                "label": fragment.label,
                "seed": fragment.seed,
                "config_hash": fragment.config_hash,
                "wall_time_s": fragment.wall_time_s,
                "sim_time_s": fragment.sim_time_s,
                "summary": fragment.summary,
                "extra": fragment.extra,
            }
        )
    merged.tracer = tracer_totals
    merged.extra = {"n_cells": len(ordered), "cells": cells}
    if ordered:
        hashes = {f.config_hash for f in ordered if f.config_hash}
        if len(hashes) == 1:
            merged.config_hash = hashes.pop()
    return merged
