"""The ``REPRO_TRACE`` observability switch and its config object.

Observability is **off by default**: an unconfigured :class:`Simulator`
pays exactly one ``is None`` test per step, which is what keeps the PR 1
throughput floor (``tests/perf/test_throughput_smoke.py``) intact.  Two
equivalent ways to turn it on:

* set ``REPRO_TRACE=1`` in the environment (optionally ``REPRO_TRACE_DIR``
  for the artifact directory) — the zero-code operator path, read once per
  :class:`Simulator` construction via :meth:`Observability.from_env`; or
* pass an explicit ``Observability(enabled=True, ...)`` to the simulator /
  run engine — the programmatic path, which wins over the environment.

Enabling observability never changes simulation results: the observer only
*reads* simulator state (and deliberately never touches the temperature
sensor, whose noise stream the DTM consumes), so a traced run is
bit-identical to an untraced one.  See ``docs/observability.md``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.utils.validation import check_positive

__all__ = [
    "TRACE_ENV",
    "TRACE_DIR_ENV",
    "DEFAULT_TRACE_DIR",
    "Observability",
    "tracing_enabled",
]

#: Environment variable that enables run-time tracing and metrics.
TRACE_ENV = "REPRO_TRACE"

#: Environment variable overriding where trace artifacts are written.
TRACE_DIR_ENV = "REPRO_TRACE_DIR"

#: Default artifact directory (relative to the working directory).
DEFAULT_TRACE_DIR = ".repro_obs"

_FALSEY = {"", "0", "false", "no", "off"}


def tracing_enabled() -> bool:
    """True when ``REPRO_TRACE`` is set to a truthy value."""
    return os.environ.get(TRACE_ENV, "").strip().lower() not in _FALSEY


@dataclass(frozen=True)
class Observability:
    """Observability configuration for one simulator / experiment run.

    ``enabled``
        Master switch.  When False every hook is skipped (the simulator
        holds no observer at all).
    ``out_dir``
        Directory for exported artifacts (Chrome trace JSON, JSONL event
        log, run manifests).  Created on demand by the exporters.
    ``trace_capacity``
        Ring-buffer size of the structured tracer, in events.  When the
        buffer wraps, the oldest events are overwritten and counted as
        dropped — tracing never grows without bound and never raises.
    ``qos_events`` / ``thermal_events``
        Per-feature switches for the per-step QoS-crossing and
        thermal-threshold detectors (both cheap; both on by default).
    """

    enabled: bool = False
    out_dir: str = DEFAULT_TRACE_DIR
    trace_capacity: int = 65536
    qos_events: bool = True
    thermal_events: bool = True

    def __post_init__(self) -> None:
        check_positive("trace_capacity", self.trace_capacity)

    @classmethod
    def from_env(cls) -> "Observability":
        """The operator path: ``REPRO_TRACE`` / ``REPRO_TRACE_DIR``."""
        return cls(
            enabled=tracing_enabled(),
            out_dir=os.environ.get(TRACE_DIR_ENV, DEFAULT_TRACE_DIR),
        )

    @classmethod
    def disabled(cls) -> "Observability":
        """An explicit off-switch (wins over the environment)."""
        return cls(enabled=False)
