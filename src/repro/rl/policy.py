"""TOP-RL migration policy: per-application agents + mediator (Fig. 6).

Each migration epoch:

1. the reward for the *previously executed* action is computed
   (``80C - T`` when every application meets its QoS target, ``-200``
   otherwise) and the Q-table is updated — only for the agent whose action
   was selected last epoch, as the paper's mediator prescribes;
2. every running application's agent observes its quantized state and
   proposes an action epsilon-greedily;
3. the mediator executes the single proposal with the highest Q-value
   (exploratory proposals carry their Q-value too, so exploration still
   reaches the platform — the source of the run-time instability the
   paper demonstrates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.npu.overhead import ManagementOverheadModel
from repro.rl.qtable import QTable
from repro.rl.state import N_STATES, StateQuantizer
from repro.sim.kernel import Simulator
from repro.utils.rng import RandomSource
from repro.utils.validation import check_in_range, check_positive


@dataclass(frozen=True)
class RLConfig:
    """Training parameters, selected as in the paper (after [lu2015])."""

    epsilon: float = 0.1
    discount: float = 0.8
    learning_rate: float = 0.05
    period_s: float = 0.5
    reward_offset_c: float = 80.0
    qos_violation_reward: float = -200.0

    def __post_init__(self):
        check_in_range("epsilon", self.epsilon, 0.0, 1.0)
        check_in_range("discount", self.discount, 0.0, 1.0)
        check_in_range("learning_rate", self.learning_rate, 0.0, 1.0)
        check_positive("period_s", self.period_s)


class TopRLMigrationPolicy:
    """Multi-agent Q-learning migration with a shared table and mediator."""

    def __init__(
        self,
        qtable: Optional[QTable] = None,
        config: RLConfig = RLConfig(),
        rng: Optional[RandomSource] = None,
        learning_enabled: bool = True,
        overhead_model: Optional[ManagementOverheadModel] = None,
        n_actions: int = 8,
    ):
        self.config = config
        self.qtable = qtable or QTable(
            N_STATES,
            n_actions,
            learning_rate=config.learning_rate,
            discount=config.discount,
        )
        self.rng = rng or RandomSource(0)
        self.learning_enabled = learning_enabled
        self.overhead_model = overhead_model or ManagementOverheadModel()
        self._quantizer: Optional[StateQuantizer] = None
        # (pid, state, action) of the action the mediator executed last epoch.
        self._last_executed: Optional[Tuple[int, int, int]] = None
        self.invocations = 0
        self.migrations_executed = 0
        # Same controller deadline as TOP-IL: the epoch must complete
        # within one DVFS period (see repro.faults.degrade).
        self.deadline_s = 0.05
        self.safe_mode_skips = 0

    # ------------------------------------------------------------------ reward
    def reward(self, sim: Simulator) -> float:
        """Eq. 7: temperature reward, crushed to -200 on any QoS violation."""
        for p in sim.running_processes():
            if not sim.qos_satisfied(p):
                return self.config.qos_violation_reward
        return self.config.reward_offset_c - sim.sensor_temp_c()

    # ------------------------------------------------------------------ epoch
    def __call__(self, sim: Simulator) -> None:
        self.invocations += 1
        processes = sim.running_processes()
        # RL inference is a table lookup (CPU); charge per-app counter reads.
        cost_s = (
            self.overhead_model.migration_base_s
            + self.overhead_model.migration_per_app_s * len(processes)
        )
        if sim.faults is not None:
            # No NPU involved, but injected deadline overruns still apply
            # and drive the shared safe-mode path (DVFS-only operation).
            deg = sim.faults.degradation
            if sim.faults.injector.deadline_overrun(sim.now_s):
                cost_s += self.deadline_s
            if cost_s > self.deadline_s:
                deg.record_deadline_miss(sim.now_s)
            else:
                deg.record_deadline_ok(sim.now_s)
            if deg.in_safe_mode(sim.now_s):
                sim.account_overhead("migration", cost_s)
                self.safe_mode_skips += 1
                return
        sim.account_overhead("migration", cost_s)
        if self._quantizer is None:
            self._quantizer = StateQuantizer(sim.platform)

        states: Dict[int, int] = {
            p.pid: self._quantizer.state_of(sim, p) for p in processes
        }

        # 1. Learn from the previously executed action.
        if self.learning_enabled and self._last_executed is not None:
            pid, state, action = self._last_executed
            if pid in states:  # the process may have finished meanwhile
                self.qtable.update(state, action, self.reward(sim), states[pid])
        self._last_executed = None

        if not processes:
            return

        # 2. Per-agent epsilon-greedy proposals.
        proposals: Dict[int, Tuple[int, float]] = {}
        for p in processes:
            state = states[p.pid]
            if float(self.rng.uniform()) < self.config.epsilon:
                action = int(self.rng.integers(0, self.qtable.n_actions))
            else:
                action = self.qtable.best_action(state)
            proposals[p.pid] = (action, self.qtable.q(state, action))

        # 3. Mediator: execute the single proposal with the highest Q-value.
        best_pid = max(proposals, key=lambda pid: proposals[pid][1])
        action, _ = proposals[best_pid]
        process = sim.process(best_pid)
        if process.core_id != action:
            sim.migrate(best_pid, action)
            self.migrations_executed += 1
        self._last_executed = (best_pid, states[best_pid], action)

    def attach(self, sim: Simulator, name: str = "top-rl-migration") -> None:
        sim.add_controller(name, self.config.period_s, self)
