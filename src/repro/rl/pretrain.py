"""Offline pre-training of the RL baseline's Q-table.

The paper trains the RL policy until convergence (~3 hours on the board)
on a random workload *different* from the evaluation workloads, stores the
Q-table, and loads it at the start of every evaluation run.  This function
reproduces that procedure in simulated time; three tables trained with
different seeds mirror the paper's three-policy robustness protocol.
"""

from __future__ import annotations

from repro.platform import Platform
from repro.rl.policy import RLConfig
from repro.rl.qtable import QTable
from repro.rl.technique import TopRL
from repro.thermal import CoolingConfig, FAN_COOLING
from repro.utils.rng import RandomSource
from repro.utils.validation import check_positive
from repro.workloads.generator import mixed_workload
from repro.workloads.runner import run_workload


def pretrain_qtable(
    platform: Platform,
    seed: int = 0,
    cooling: CoolingConfig = FAN_COOLING,
    n_apps: int = 30,
    arrival_rate_per_s: float = 1.0 / 15.0,
    instruction_scale: float = 0.05,
    episodes: int = 3,
    config: RLConfig = RLConfig(),
) -> QTable:
    """Train a Q-table on random workloads until it has seen enough epochs.

    ``episodes`` independent random workloads are executed back to back
    with learning enabled; the Q-table persists across them (the paper's
    single 3 h session is equivalent to several workload drains).  The
    pre-training workload seed space is disjoint from the evaluation seeds
    by construction (offset by a large constant).
    """
    check_positive("episodes", episodes)
    table = QTable(
        n_states=288,
        n_actions=platform.n_cores,
        learning_rate=config.learning_rate,
        discount=config.discount,
    )
    for episode in range(episodes):
        workload_seed = 100_000 + 1000 * seed + episode
        workload = mixed_workload(
            platform,
            n_apps=n_apps,
            arrival_rate_per_s=arrival_rate_per_s,
            seed=workload_seed,
            instruction_scale=instruction_scale,
        )
        technique = TopRL(
            qtable=table,
            config=config,
            rng=RandomSource(seed).child(f"pretrain-{episode}"),
            learning_enabled=True,
        )
        run_workload(
            platform,
            technique,
            workload,
            cooling=cooling,
            seed=workload_seed,
        )
    return table
