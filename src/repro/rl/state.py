"""State quantization for the tabular RL baseline.

The paper quantizes the same information the IL features carry, keeping the
Q-table at 2,304 entries.  The discrete state combines:

* QoS target met / missed (2),
* AoI's current cluster (2),
* AoI's L2D access rate, 3 bins (memory intensity),
* LITTLE-cluster VF level, 4 bins,
* big-cluster VF level, 3 bins,
* whether the *other* cluster has a free core (2),

for ``2 * 2 * 3 * 4 * 3 * 2 = 288`` states, times 8 migration actions =
2,304 Q-table entries — the size the paper reports.
"""

from __future__ import annotations

from repro.platform import Platform
from repro.platform.hikey import BIG, LITTLE
from repro.sim.kernel import Simulator
from repro.sim.process import Process

#: L2D accesses/s thresholds separating compute / mixed / memory-bound.
L2D_BIN_EDGES = (1.0e7, 8.0e7)

N_QOS = 2
N_CLUSTER = 2
N_L2D = 3
N_FL = 4
N_FB = 3
N_FREE_OTHER = 2
N_STATES = N_QOS * N_CLUSTER * N_L2D * N_FL * N_FB * N_FREE_OTHER


class StateQuantizer:
    """Maps run-time observables of one AoI to a discrete state index."""

    def __init__(self, platform: Platform):
        self.platform = platform
        self._little_levels = len(platform.cluster(LITTLE).vf_table)
        self._big_levels = len(platform.cluster(BIG).vf_table)

    # --- component quantizers ------------------------------------------------
    def qos_bin(self, sim: Simulator, process: Process) -> int:
        return 1 if sim.qos_satisfied(process) else 0

    def cluster_bin(self, sim: Simulator, process: Process) -> int:
        cluster = sim.platform.cluster_of_core(process.core_id)
        return 0 if cluster.name == LITTLE else 1

    def l2d_bin(self, process: Process) -> int:
        rate = process.smoothed_l2d_rate
        for i, edge in enumerate(L2D_BIN_EDGES):
            if rate < edge:
                return i
        return len(L2D_BIN_EDGES)

    def _vf_bin(self, sim: Simulator, cluster_name: str, n_bins: int) -> int:
        table = sim.platform.cluster(cluster_name).vf_table
        idx = table.index_of(sim.vf_level(cluster_name).frequency_hz)
        n_levels = len(table)
        return min(n_bins - 1, idx * n_bins // n_levels)

    def fl_bin(self, sim: Simulator) -> int:
        return self._vf_bin(sim, LITTLE, N_FL)

    def fb_bin(self, sim: Simulator) -> int:
        return self._vf_bin(sim, BIG, N_FB)

    def free_other_bin(self, sim: Simulator, process: Process) -> int:
        """1 when the cluster the AoI is *not* on has a free core."""
        current = sim.platform.cluster_of_core(process.core_id).name
        other = BIG if current == LITTLE else LITTLE
        for core in sim.platform.cores_in_cluster(other):
            if not sim.processes_on_core(core):
                return 1
        return 0

    # --- combined index ---------------------------------------------------------
    def state_of(self, sim: Simulator, process: Process) -> int:
        """Discrete state index in ``[0, N_STATES)`` for one AoI."""
        if not process.is_running():
            raise ValueError(f"pid {process.pid} is not running")
        index = self.qos_bin(sim, process)
        index = index * N_CLUSTER + self.cluster_bin(sim, process)
        index = index * N_L2D + self.l2d_bin(process)
        index = index * N_FL + self.fl_bin(sim)
        index = index * N_FB + self.fb_bin(sim)
        index = index * N_FREE_OTHER + self.free_other_bin(sim, process)
        return index
