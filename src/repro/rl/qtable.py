"""The shared Q-table and the Q-learning update rule."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_in_range, check_non_negative


class QTable:
    """A dense (n_states x n_actions) action-value table.

    All agents share one table (the paper's design) to generalize across
    applications and give newly arriving applications a trained policy
    immediately.  Initialization is constant, matching the paper's remark
    that initial RL performance is not representative.
    """

    def __init__(
        self,
        n_states: int,
        n_actions: int,
        initial_value: float = 0.0,
        learning_rate: float = 0.05,
        discount: float = 0.8,
    ):
        if n_states <= 0 or n_actions <= 0:
            raise ValueError("table dimensions must be positive")
        check_in_range("learning_rate", learning_rate, 0.0, 1.0)
        check_in_range("discount", discount, 0.0, 1.0)
        self.values = np.full((n_states, n_actions), float(initial_value))
        self.learning_rate = learning_rate
        self.discount = discount
        self.updates = 0

    @property
    def n_states(self) -> int:
        return self.values.shape[0]

    @property
    def n_actions(self) -> int:
        return self.values.shape[1]

    @property
    def size(self) -> int:
        """Total number of entries (the paper reports 2,304)."""
        return self.values.size

    def best_action(self, state: int) -> int:
        return int(np.argmax(self.values[state]))

    def q(self, state: int, action: int) -> float:
        return float(self.values[state, action])

    def update(self, state: int, action: int, reward: float, next_state: int) -> None:
        """One Q-learning step: ``Q += alpha (r + gamma max_a' Q' - Q)``."""
        check_non_negative("state", state)
        target = reward + self.discount * float(np.max(self.values[next_state]))
        self.values[state, action] += self.learning_rate * (
            target - self.values[state, action]
        )
        self.updates += 1

    def copy(self) -> "QTable":
        clone = QTable(
            self.n_states,
            self.n_actions,
            learning_rate=self.learning_rate,
            discount=self.discount,
        )
        clone.values[:] = self.values
        clone.updates = self.updates
        return clone

    def save(self, path: str) -> None:
        np.savez_compressed(
            path,
            values=self.values,
            learning_rate=self.learning_rate,
            discount=self.discount,
        )

    @classmethod
    def load(cls, path: str) -> "QTable":
        data = np.load(path)
        table = cls(
            n_states=data["values"].shape[0],
            n_actions=data["values"].shape[1],
            learning_rate=float(data["learning_rate"]),
            discount=float(data["discount"]),
        )
        table.values[:] = data["values"]
        return table
