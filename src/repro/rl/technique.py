"""TOP-RL as an installable technique: RL migration + QoS DVFS loop.

For a fair comparison the paper pairs the RL migration policy with the
**same** DVFS control loop as TOP-IL; only the migration decisions differ.
"""

from __future__ import annotations

from typing import Optional

from repro.governors.base import Technique
from repro.governors.qos_dvfs import ChargedDVFSCallback, QoSDVFSControlLoop
from repro.npu.overhead import ManagementOverheadModel
from repro.rl.policy import RLConfig, TopRLMigrationPolicy
from repro.rl.qtable import QTable
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.utils.rng import RandomSource


def _least_loaded_placement(sim: Simulator, process: Process) -> int:
    loads = [
        (len(sim.processes_on_core(c)), c) for c in range(sim.platform.n_cores)
    ]
    loads.sort()
    return loads[0][1]


class TopRL(Technique):
    """The RL baseline with the shared QoS DVFS control loop."""

    name = "TOP-RL"

    def __init__(
        self,
        qtable: Optional[QTable] = None,
        config: RLConfig = RLConfig(),
        rng: Optional[RandomSource] = None,
        learning_enabled: bool = True,
        dvfs_period_s: float = 0.05,
        overhead_model: Optional[ManagementOverheadModel] = None,
    ):
        self.dvfs_loop = QoSDVFSControlLoop(period_s=dvfs_period_s)
        self.migration = TopRLMigrationPolicy(
            qtable=qtable,
            config=config,
            rng=rng,
            learning_enabled=learning_enabled,
            overhead_model=overhead_model,
        )
        self._overhead = self.migration.overhead_model

    @property
    def qtable(self) -> QTable:
        return self.migration.qtable

    def attach(self, sim: Simulator) -> None:
        """Install the RL migration policy + shared DVFS loop on ``sim``.

        Controller names (``top-rl-migration``, ``qos-dvfs``) label the
        observability layer's spans and latency histograms when tracing is
        enabled, exactly as for TOP-IL — so IL-vs-RL decision timelines
        line up in ``chrome://tracing``.
        """
        sim.placement_policy = _least_loaded_placement
        if sim.obs is not None:
            sim.obs.meta["technique"] = self.name
        self.dvfs_loop.attach(sim)
        self.migration.attach(sim)
        sim.remove_controller("qos-dvfs")
        sim.add_controller(
            "qos-dvfs",
            self.dvfs_loop.period_s,
            ChargedDVFSCallback(self.dvfs_loop, self._overhead),
        )
