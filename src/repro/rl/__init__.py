"""TOP-RL: the reinforcement-learning baseline (Sec. 6 of the paper).

One tabular Q-learning agent per running application, all sharing a single
Q-table (2,304 entries = 288 quantized states x 8 migration actions).  A
mediator selects the single executed action among the agents' proposals by
the highest Q-value and forwards the next reward only to that agent.  The
reward combines temperature and the QoS constraint into one scalar
(``80C - T``, or ``-200`` on any QoS violation) — the structural weakness
the paper attributes RL's instability to.

Like on the board, the policy is pre-trained until convergence on a random
workload (:func:`repro.rl.pretrain.pretrain_qtable`), then continues
epsilon-greedy **online** learning during evaluation runs.
"""

from repro.rl.state import StateQuantizer, N_STATES
from repro.rl.qtable import QTable
from repro.rl.policy import TopRLMigrationPolicy, RLConfig
from repro.rl.technique import TopRL
from repro.rl.pretrain import pretrain_qtable
from repro.rl.double import DoubleQTable

__all__ = [
    "StateQuantizer",
    "N_STATES",
    "QTable",
    "TopRLMigrationPolicy",
    "RLConfig",
    "TopRL",
    "pretrain_qtable",
    "DoubleQTable",
]
