"""Double Q-learning variant of the RL baseline (extension).

A natural objection to the paper's RL comparison is that plain tabular
Q-learning over-estimates action values (maximization bias), and that a
stronger learner might close the gap to TOP-IL.  Double Q-learning
(van Hasselt, 2010) removes the bias by keeping two tables and
bootstrapping each from the other's argmax.  The ablation in
``repro.experiments.ablation.run_rl_variant_ablation`` shows the
instability the paper attributes to *online exploration with a scalarized
reward* persists under the improved learner.
"""

from __future__ import annotations

import numpy as np

from repro.rl.qtable import QTable
from repro.utils.rng import RandomSource


class DoubleQTable:
    """Two cross-bootstrapped Q-tables with a shared action interface.

    Exposes the same ``best_action`` / ``q`` / ``update`` / ``n_actions``
    surface as :class:`~repro.rl.qtable.QTable`, so
    :class:`~repro.rl.policy.TopRLMigrationPolicy` accepts either.
    Action selection uses the *sum* of both tables (the standard choice).
    """

    def __init__(
        self,
        n_states: int,
        n_actions: int,
        learning_rate: float = 0.05,
        discount: float = 0.8,
        rng: RandomSource = None,
    ):
        self.table_a = QTable(
            n_states, n_actions, learning_rate=learning_rate, discount=discount
        )
        self.table_b = QTable(
            n_states, n_actions, learning_rate=learning_rate, discount=discount
        )
        self.learning_rate = learning_rate
        self.discount = discount
        self._rng = rng or RandomSource(0)
        self.updates = 0

    @property
    def n_states(self) -> int:
        return self.table_a.n_states

    @property
    def n_actions(self) -> int:
        return self.table_a.n_actions

    @property
    def size(self) -> int:
        return self.table_a.size + self.table_b.size

    @property
    def values(self) -> np.ndarray:
        """Combined action values (sum of both tables)."""
        return self.table_a.values + self.table_b.values

    def best_action(self, state: int) -> int:
        return int(np.argmax(self.values[state]))

    def q(self, state: int, action: int) -> float:
        return float(self.values[state, action])

    def update(self, state: int, action: int, reward: float, next_state: int) -> None:
        """Double Q update: pick a table at random, bootstrap from the other."""
        if float(self._rng.uniform()) < 0.5:
            primary, secondary = self.table_a, self.table_b
        else:
            primary, secondary = self.table_b, self.table_a
        best_next = primary.best_action(next_state)
        target = reward + self.discount * secondary.q(next_state, best_next)
        primary.values[state, action] += self.learning_rate * (
            target - primary.values[state, action]
        )
        primary.updates += 1
        self.updates += 1

    def copy(self) -> "DoubleQTable":
        clone = DoubleQTable(
            self.n_states,
            self.n_actions,
            learning_rate=self.learning_rate,
            discount=self.discount,
            rng=self._rng.child("copy"),
        )
        clone.table_a.values[:] = self.table_a.values
        clone.table_b.values[:] = self.table_b.values
        clone.updates = self.updates
        return clone
