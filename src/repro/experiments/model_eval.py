"""Sec. 7.4 — evaluating the NN model in isolation on held-out AoIs.

Fresh trace grids are collected for scenarios whose AoI is a *held-out*
kernel (never used for training).  For every sweep setting the model rates
all candidate mappings from each feasible source core; the predicted
mapping (highest rating among candidates) is compared against the oracle's
coolest mapping.  Reported, per model and aggregated over models trained
with different seeds:

* the fraction of cases where the chosen mapping is within 1 degC of the
  optimum (paper: 82 +/- 5 %), and
* the mean temperature excess over the optimum (paper: 0.5 +/- 0.2 degC).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.catalog import HELDOUT_APPS
from repro.experiments.assets import AssetStore
from repro.il.dataset import DatasetBuilder
from repro.il.pipeline import generate_scenarios
from repro.il.traces import TraceGrid
from repro.nn.layers import Sequential
from repro.utils.rng import RandomSource
from repro.utils.tables import ascii_table
from repro.utils.validation import check_positive


@dataclass
class ModelEvalConfig:
    test_apps: Sequence[str] = HELDOUT_APPS
    n_scenarios: int = 12
    within_threshold_c: float = 1.0
    seed: int = 77

    def __post_init__(self):
        check_positive("n_scenarios", self.n_scenarios)
        check_positive("within_threshold_c", self.within_threshold_c)

    @classmethod
    def smoke(cls) -> "ModelEvalConfig":
        return cls(n_scenarios=3)

    @classmethod
    def paper(cls) -> "ModelEvalConfig":
        return cls(n_scenarios=30)


@dataclass
class ModelEvalResult:
    per_model_within: List[float] = field(default_factory=list)
    per_model_excess: List[float] = field(default_factory=list)
    n_cases: int = 0

    @property
    def mean_within(self) -> float:
        return float(np.mean(self.per_model_within))

    @property
    def std_within(self) -> float:
        return float(np.std(self.per_model_within))

    @property
    def mean_excess_c(self) -> float:
        return float(np.mean(self.per_model_excess))

    @property
    def std_excess_c(self) -> float:
        return float(np.std(self.per_model_excess))

    def report(self) -> str:
        rows = [
            (i, f"{100 * w:.1f} %", f"{e:.2f} C")
            for i, (w, e) in enumerate(
                zip(self.per_model_within, self.per_model_excess)
            )
        ]
        table = ascii_table(["model", "within 1C", "mean excess"], rows)
        return (
            f"{table}\n"
            f"aggregate: within 1C {100 * self.mean_within:.1f} +/- "
            f"{100 * self.std_within:.1f} %, excess "
            f"{self.mean_excess_c:.2f} +/- {self.std_excess_c:.2f} C "
            f"({self.n_cases} cases)"
        )


def _evaluate_model_on_grid(
    model: Sequential,
    grid: TraceGrid,
    builder: DatasetBuilder,
    threshold_c: float,
    only_suboptimal_sources: bool = False,
) -> Tuple[List[bool], List[float]]:
    """Walk the sweep; return (within-threshold flags, temp excesses).

    With ``only_suboptimal_sources`` the evaluation restricts itself to
    cases where the AoI currently sits on a core that is *not* the coolest
    feasible mapping — the recovery situations that motivate the paper's
    exhaustive-source training (its argument for not needing DAgger).
    """
    platform = builder.platform
    occupied = sorted(grid.scenario.background_dict())
    candidates = grid.aoi_cores()
    max_ips = grid.max_aoi_ips()
    within: List[bool] = []
    excess: List[float] = []

    from repro.il.dataset import _dict_product  # same sweep as training

    for fraction in builder.qos_fractions:
        qos_target = fraction * max_ips
        for f_wo_aoi in _dict_product(grid.vf_grid):
            selections = {
                core: builder.select_trace(grid, core, qos_target, f_wo_aoi)
                for core in candidates
            }
            feasible = {
                core: sel
                for core, sel in selections.items()
                if sel.point is not None
            }
            if len(feasible) < 2:
                continue  # nothing to choose between
            t_min = min(sel.point.peak_temp_c for sel in feasible.values())
            utils = {c: 0.0 for c in range(platform.n_cores)}
            for c in occupied:
                utils[c] = 1.0
            best_core = min(
                feasible, key=lambda c: feasible[c].point.peak_temp_c
            )
            for source_core, source_sel in feasible.items():
                if only_suboptimal_sources and source_core == best_core:
                    continue
                source_utils = dict(utils)
                source_utils[source_core] = 1.0
                vec = builder.extractor.build(
                    aoi_ips=source_sel.point.aoi_ips,
                    aoi_l2d_rate=source_sel.point.aoi_l2d_rate,
                    aoi_qos_target=qos_target,
                    aoi_core=source_core,
                    f_wo_aoi_hz=f_wo_aoi,
                    f_current_hz=source_sel.f_hz,
                    core_utilization=source_utils,
                )
                ratings = model.forward(vec)[0]
                chosen = max(candidates, key=lambda c: ratings[c])
                if chosen in feasible:
                    t_chosen = feasible[chosen].point.peak_temp_c
                else:
                    # Choosing an infeasible core is maximally wrong: charge
                    # the hottest feasible temperature plus the threshold.
                    t_chosen = (
                        max(sel.point.peak_temp_c for sel in feasible.values())
                        + threshold_c
                    )
                within.append(t_chosen - t_min <= threshold_c)
                excess.append(t_chosen - t_min)
    return within, excess


def run_model_eval(
    assets: AssetStore,
    config: ModelEvalConfig = ModelEvalConfig(),
    grids: Optional[Sequence[TraceGrid]] = None,
) -> ModelEvalResult:
    """Evaluate every trained model on held-out-AoI trace grids."""
    platform = assets.platform
    pipeline = assets.pipeline()
    if grids is None:
        scenarios = generate_scenarios(
            platform,
            config.test_apps,
            config.n_scenarios,
            RandomSource(config.seed).child("model-eval"),
            pipeline.config.max_background_apps,
        )
        grids = pipeline.collect_traces(scenarios)
    builder = pipeline.builder
    result = ModelEvalResult()
    for model in assets.models():
        flags: List[bool] = []
        excesses: List[float] = []
        for grid in grids:
            w, e = _evaluate_model_on_grid(
                model, grid, builder, config.within_threshold_c
            )
            flags.extend(w)
            excesses.extend(e)
        if not flags:
            raise ValueError("model evaluation produced no comparable cases")
        result.per_model_within.append(float(np.mean(flags)))
        result.per_model_excess.append(float(np.mean(excesses)))
        result.n_cases = len(flags)
    return result
