"""Fig. 5 — worst-case application-migration overhead.

The paper quantifies the cost of migrating by ping-ponging an application
between a big and a LITTLE core every migration epoch (500 ms) and
comparing its throughput against the average of staying put::

    m = (1/2 (1/t_big + 1/t_LITTLE)) / (1/t_migrate) - 1

Expressed in rates: ``m = mean(r_big, r_LITTLE) / r_pingpong - 1``.  The
overhead comes from cold caches after each move; applications with strong
phase behaviour (dedup, facesim) can show *negative* overhead when the
epoch correlates with their phases.  Each experiment is repeated three
times with a different epoch offset (the repetition randomness of the
paper's three runs).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.catalog import get_app
from repro.platform import Platform, hikey970
from repro.platform.hikey import BIG, LITTLE
from repro.sim.kernel import SimConfig, Simulator
from repro.thermal import FAN_COOLING
from repro.utils.tables import ascii_table
from repro.utils.validation import check_positive


@dataclass
class MigrationOverheadConfig:
    apps: Sequence[str] = (
        "blackscholes",
        "bodytrack",
        "canneal",
        "dedup",
        "facesim",
        "ferret",
        "fluidanimate",
        "swaptions",
    )
    epoch_s: float = 0.5
    measure_s: float = 60.0
    repetitions: int = 3
    little_core: int = 0
    big_core: int = 4
    dt_s: float = 0.01

    def __post_init__(self):
        check_positive("measure_s", self.measure_s)
        check_positive("repetitions", self.repetitions)

    @classmethod
    def smoke(cls) -> "MigrationOverheadConfig":
        return cls(apps=("dedup", "swaptions", "canneal"), measure_s=30.0, repetitions=2)

    @classmethod
    def paper(cls) -> "MigrationOverheadConfig":
        return cls()


@dataclass
class MigrationOverheadResult:
    #: app -> (mean overhead, std over repetitions)
    overhead: List[Tuple[str, float, float]] = field(default_factory=list)

    def max_overhead(self) -> float:
        return max(m for _, m, _ in self.overhead)

    def mean_overhead(self) -> float:
        return float(np.mean([m for _, m, _ in self.overhead]))

    def report(self) -> str:
        rows = [
            (app, f"{100 * mean:+.2f} %", f"{100 * std:.2f} %")
            for app, mean, std in self.overhead
        ]
        table = ascii_table(["app", "overhead", "std"], rows)
        return (
            f"{table}\n"
            f"max {100 * self.max_overhead():.2f} %, "
            f"mean {100 * self.mean_overhead():.2f} %"
        )


def _throughput(
    platform: Platform,
    app_name: str,
    core_schedule,
    measure_s: float,
    epoch_s: float,
    dt_s: float,
) -> float:
    """Instructions/s of ``app`` under a core schedule (callable of time)."""
    sim = Simulator(
        platform,
        FAN_COOLING,
        config=SimConfig(dt_s=dt_s, model_overhead_on_core=None),
        sensor_noise_std_c=0.0,
    )
    for cluster in platform.clusters:
        sim.set_vf_level(cluster.name, cluster.vf_table.max_level)
    app = dataclasses.replace(get_app(app_name), total_instructions=1e15)
    pid = sim.submit(app, qos_target_ips=1.0, arrival_time_s=0.0)
    first_core = core_schedule(0.0)
    sim.placement_policy = lambda s, p: first_core

    def migrator(s: Simulator) -> None:
        target = core_schedule(s.now_s)
        proc = s.process(pid)
        if proc.is_running() and proc.core_id != target:
            s.migrate(pid, target)

    sim.add_controller("pingpong", epoch_s, migrator)
    sim.run_for(measure_s)
    return sim.process(pid).instructions_done / measure_s


def run_migration_overhead(
    config: MigrationOverheadConfig = MigrationOverheadConfig(),
    platform: Optional[Platform] = None,
) -> MigrationOverheadResult:
    """Measure the worst-case ping-pong migration overhead per application."""
    platform = platform or hikey970()
    result = MigrationOverheadResult()
    for app_name in config.apps:
        r_big = _throughput(
            platform,
            app_name,
            lambda t: config.big_core,
            config.measure_s,
            config.epoch_s,
            config.dt_s,
        )
        r_little = _throughput(
            platform,
            app_name,
            lambda t: config.little_core,
            config.measure_s,
            config.epoch_s,
            config.dt_s,
        )
        overheads = []
        for rep in range(config.repetitions):
            offset = rep * config.epoch_s / config.repetitions

            def schedule(t: float, _offset=offset) -> int:
                phase = int((t + _offset) // config.epoch_s)
                return config.big_core if phase % 2 == 0 else config.little_core

            r_pingpong = _throughput(
                platform,
                app_name,
                schedule,
                config.measure_s,
                config.epoch_s,
                config.dt_s,
            )
            overheads.append(0.5 * (r_big + r_little) / r_pingpong - 1.0)
        result.overhead.append(
            (app_name, float(np.mean(overheads)), float(np.std(overheads)))
        )
    return result
