"""Run the complete evaluation and render a paper-vs-measured report.

``generate_report`` executes every experiment of the paper's evaluation
section at a configurable scale and renders one markdown document with the
measured numbers next to the paper's, which is how ``EXPERIMENTS.md`` is
produced (``python -m repro.cli report``).

The sections come from the experiment registry
(:data:`repro.experiments.EXPERIMENT_SPECS`): every spec with
``in_report=True`` contributes one section, in registry order, with the
spec's title and paper claim.  Adding an experiment to the registry adds
it to ``list``, ``run``, *and* this report — there is no second list to
keep in sync.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.experiments import EXPERIMENT_SPECS
from repro.experiments.ablation import AblationConfig
from repro.experiments.assets import AssetStore
from repro.experiments.chaos import ChaosConfig
from repro.experiments.illustrative import IllustrativeConfig
from repro.experiments.main_mixed import MainMixedConfig
from repro.experiments.migration import MigrationOverheadConfig
from repro.experiments.model_eval import ModelEvalConfig
from repro.experiments.motivation import MotivationConfig
from repro.experiments.nas import NASConfig
from repro.experiments.overhead import OverheadConfig
from repro.experiments.platforms import PlatformComparisonConfig
from repro.experiments.resilience import ResilienceConfig
from repro.experiments.single_app import SingleAppConfig
from repro.nn.training import TrainingConfig
from repro.obs.metrics import MetricsRegistry
from repro.thermal import FAN_COOLING, PASSIVE_COOLING


@dataclass
class ReportScale:
    """Experiment sizes for one report run."""

    name: str
    motivation: MotivationConfig
    nas: NASConfig
    migration: MigrationOverheadConfig
    illustrative: IllustrativeConfig
    main_mixed: MainMixedConfig
    single_app: SingleAppConfig
    model_eval: ModelEvalConfig
    overhead: OverheadConfig
    ablation: AblationConfig
    resilience: ResilienceConfig
    chaos: ChaosConfig
    platforms: PlatformComparisonConfig

    @classmethod
    def smoke(cls) -> "ReportScale":
        return cls(
            name="smoke",
            motivation=MotivationConfig.smoke(),
            nas=NASConfig.smoke(),
            migration=MigrationOverheadConfig.smoke(),
            illustrative=IllustrativeConfig.smoke(),
            main_mixed=MainMixedConfig.smoke(),
            single_app=SingleAppConfig.smoke(),
            model_eval=ModelEvalConfig.smoke(),
            overhead=OverheadConfig.smoke(),
            ablation=AblationConfig.smoke(),
            resilience=ResilienceConfig.smoke(),
            chaos=ChaosConfig.smoke(),
            platforms=PlatformComparisonConfig.smoke(),
        )

    @classmethod
    def medium(cls) -> "ReportScale":
        """Minutes-scale sizes that exhibit the paper's shapes clearly."""
        return cls(
            name="medium",
            motivation=MotivationConfig(observe_s=180.0),
            nas=NASConfig(
                depths=(1, 2, 3, 4, 5, 6),
                widths=(8, 16, 32, 64, 128),
                training=TrainingConfig(max_epochs=120, patience=15),
            ),
            migration=MigrationOverheadConfig(measure_s=60.0, repetitions=3),
            illustrative=IllustrativeConfig(instruction_scale=0.15),
            main_mixed=MainMixedConfig(
                n_apps=16,
                arrival_rates=(1.0 / 30.0, 1.0 / 15.0),
                repetitions=3,
                coolings=(FAN_COOLING, PASSIVE_COOLING),
                instruction_scale=0.15,
            ),
            single_app=SingleAppConfig(repetitions=3, instruction_scale=0.1),
            model_eval=ModelEvalConfig(n_scenarios=12),
            overhead=OverheadConfig(
                app_counts=(1, 2, 4, 6, 8), instruction_scale=0.03
            ),
            ablation=AblationConfig(n_train_scenarios=16, n_test_scenarios=6),
            resilience=ResilienceConfig(),
            chaos=ChaosConfig(),
            platforms=PlatformComparisonConfig(),
        )

    @classmethod
    def paper(cls) -> "ReportScale":
        return cls(
            name="paper",
            motivation=MotivationConfig.paper(),
            nas=NASConfig.paper(),
            migration=MigrationOverheadConfig.paper(),
            illustrative=IllustrativeConfig.paper(),
            main_mixed=MainMixedConfig.paper(),
            single_app=SingleAppConfig.paper(),
            model_eval=ModelEvalConfig.paper(),
            overhead=OverheadConfig.paper(),
            ablation=AblationConfig.paper(),
            resilience=ResilienceConfig.paper(),
            chaos=ChaosConfig.paper(),
            platforms=PlatformComparisonConfig.paper(),
        )


def _section(title: str, paper_claim: str, body: str, elapsed_s: float) -> str:
    return (
        f"## {title}\n\n"
        f"**Paper:** {paper_claim}\n\n"
        f"**Measured** ({elapsed_s:.0f} s wall):\n\n"
        "```\n"
        f"{body}\n"
        "```\n"
    )


def generate_report(
    assets: AssetStore,
    scale: Optional[ReportScale] = None,
    progress: Optional[Callable[[str], None]] = print,
    registry: Optional[MetricsRegistry] = None,
) -> str:
    """Run every registered experiment and render the markdown report.

    Args:
        assets: Trained models, Q-tables, and the platform (built or loaded
            from the artifact store).
        scale: Experiment sizes; defaults to :meth:`ReportScale.medium`.
        progress: Called with a one-line status before each section;
            ``None`` silences progress output.
        registry: Optional observability metrics registry; when given,
            each section's wall-clock duration is recorded as the
            ``report_section_wall_s{section=...}`` gauge (and the
            resilience sweep counts its retries into it).

    Returns:
        The full markdown report (the content of ``EXPERIMENTS.md``).
    """
    scale = scale or ReportScale.medium()
    say = progress or (lambda msg: None)
    sections: List[str] = []
    platform_name = assets.platform.name if assets is not None else "hikey970"
    header = (
        "# EXPERIMENTS — paper vs. measured\n\n"
        "Generated by `repro.experiments.report.generate_report` at scale "
        f"`{scale.name}` on the simulated `{platform_name}` "
        "platform.  Absolute\n"
        "numbers come from the simulation substrate; the comparisons check\n"
        "the paper's *shapes* (who wins, by roughly what factor, where\n"
        "crossovers fall).\n"
    )
    for spec in EXPERIMENT_SPECS:
        if not spec.in_report:
            continue
        say(f"[report] {spec.title} ...")
        # Wall-clock section timings are reporting metadata, not results.
        start = time.time()  # repro-lint: ignore[DET003]
        try:
            body = spec.body(assets, scale, registry)
        except Exception as exc:
            # One broken experiment must not sink the other sections: a
            # partial report with an explicit failure entry beats no
            # report after hours of compute.
            body = (
                "SECTION FAILED — the remaining sections rendered from "
                "their own runs.\n"
                f"{type(exc).__name__}: {exc}"
            )
            say(f"[report] {spec.title} FAILED: {exc!r}")
            if registry is not None:
                registry.counter(
                    "report_section_failures_total", section=spec.name
                ).inc()
        elapsed_s = time.time() - start  # repro-lint: ignore[DET003]
        if registry is not None:
            registry.gauge(
                "report_section_wall_s", section=spec.title
            ).set(elapsed_s)
        sections.append(_section(spec.title, spec.paper_claim, body, elapsed_s))
    return header + "\n" + "\n".join(sections)
