"""Run the complete evaluation and render a paper-vs-measured report.

``generate_report`` executes every experiment of the paper's evaluation
section at a configurable scale and renders one markdown document with the
measured numbers next to the paper's, which is how ``EXPERIMENTS.md`` is
produced (``python -m repro.cli report``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.experiments.ablation import (
    AblationConfig,
    _collect_grids,
    run_feature_ablation,
    run_label_ablation,
    run_migration_granularity_ablation,
    run_noise_ablation,
    run_period_ablation,
    run_source_coverage_ablation,
)
from repro.experiments.assets import AssetStore
from repro.experiments.illustrative import IllustrativeConfig, run_illustrative
from repro.experiments.main_mixed import MainMixedConfig, run_main_mixed
from repro.experiments.migration import (
    MigrationOverheadConfig,
    run_migration_overhead,
)
from repro.experiments.model_eval import ModelEvalConfig, run_model_eval
from repro.experiments.motivation import MotivationConfig, run_motivation
from repro.experiments.nas import NASConfig, run_nas
from repro.experiments.overhead import OverheadConfig, run_overhead
from repro.experiments.resilience import ResilienceConfig, run_resilience
from repro.experiments.single_app import SingleAppConfig, run_single_app
from repro.nn.training import TrainingConfig
from repro.obs.metrics import MetricsRegistry
from repro.thermal import FAN_COOLING, PASSIVE_COOLING


@dataclass
class ReportScale:
    """Experiment sizes for one report run."""

    name: str
    motivation: MotivationConfig
    nas: NASConfig
    migration: MigrationOverheadConfig
    illustrative: IllustrativeConfig
    main_mixed: MainMixedConfig
    single_app: SingleAppConfig
    model_eval: ModelEvalConfig
    overhead: OverheadConfig
    ablation: AblationConfig
    resilience: ResilienceConfig

    @classmethod
    def smoke(cls) -> "ReportScale":
        return cls(
            name="smoke",
            motivation=MotivationConfig.smoke(),
            nas=NASConfig.smoke(),
            migration=MigrationOverheadConfig.smoke(),
            illustrative=IllustrativeConfig.smoke(),
            main_mixed=MainMixedConfig.smoke(),
            single_app=SingleAppConfig.smoke(),
            model_eval=ModelEvalConfig.smoke(),
            overhead=OverheadConfig.smoke(),
            ablation=AblationConfig.smoke(),
            resilience=ResilienceConfig.smoke(),
        )

    @classmethod
    def medium(cls) -> "ReportScale":
        """Minutes-scale sizes that exhibit the paper's shapes clearly."""
        return cls(
            name="medium",
            motivation=MotivationConfig(observe_s=180.0),
            nas=NASConfig(
                depths=(1, 2, 3, 4, 5, 6),
                widths=(8, 16, 32, 64, 128),
                training=TrainingConfig(max_epochs=120, patience=15),
            ),
            migration=MigrationOverheadConfig(measure_s=60.0, repetitions=3),
            illustrative=IllustrativeConfig(instruction_scale=0.15),
            main_mixed=MainMixedConfig(
                n_apps=16,
                arrival_rates=(1.0 / 30.0, 1.0 / 15.0),
                repetitions=3,
                coolings=(FAN_COOLING, PASSIVE_COOLING),
                instruction_scale=0.15,
            ),
            single_app=SingleAppConfig(repetitions=3, instruction_scale=0.1),
            model_eval=ModelEvalConfig(n_scenarios=12),
            overhead=OverheadConfig(
                app_counts=(1, 2, 4, 6, 8), instruction_scale=0.03
            ),
            ablation=AblationConfig(n_train_scenarios=16, n_test_scenarios=6),
            resilience=ResilienceConfig(),
        )

    @classmethod
    def paper(cls) -> "ReportScale":
        return cls(
            name="paper",
            motivation=MotivationConfig.paper(),
            nas=NASConfig.paper(),
            migration=MigrationOverheadConfig.paper(),
            illustrative=IllustrativeConfig.paper(),
            main_mixed=MainMixedConfig.paper(),
            single_app=SingleAppConfig.paper(),
            model_eval=ModelEvalConfig.paper(),
            overhead=OverheadConfig.paper(),
            ablation=AblationConfig.paper(),
            resilience=ResilienceConfig.paper(),
        )


def _main_and_usage(assets: AssetStore, scale: ReportScale) -> str:
    result = run_main_mixed(assets, scale.main_mixed)
    coolings = [c.name for c in scale.main_mixed.coolings]
    usage_cooling = "no_fan" if "no_fan" in coolings else coolings[0]
    return (
        result.report()
        + "\n\nCPU time per cluster and VF level "
        + f"({usage_cooling}):\n"
        + result.frequency_usage_report(cooling=usage_cooling)
    )


def _section(title: str, paper_claim: str, body: str, elapsed_s: float) -> str:
    return (
        f"## {title}\n\n"
        f"**Paper:** {paper_claim}\n\n"
        f"**Measured** ({elapsed_s:.0f} s wall):\n\n"
        "```\n"
        f"{body}\n"
        "```\n"
    )


def generate_report(
    assets: AssetStore,
    scale: Optional[ReportScale] = None,
    progress: Optional[Callable[[str], None]] = print,
    registry: Optional[MetricsRegistry] = None,
) -> str:
    """Run every experiment and render the markdown report.

    Args:
        assets: Trained models, Q-tables, and the platform (built or loaded
            from the asset cache).
        scale: Experiment sizes; defaults to :meth:`ReportScale.medium`.
        progress: Called with a one-line status before each section;
            ``None`` silences progress output.
        registry: Optional observability metrics registry; when given,
            each section's wall-clock duration is recorded as the
            ``report_section_wall_s{section=...}`` gauge.

    Returns:
        The full markdown report (the content of ``EXPERIMENTS.md``).
    """
    scale = scale or ReportScale.medium()
    say = progress or (lambda msg: None)
    sections: List[str] = []
    header = (
        "# EXPERIMENTS — paper vs. measured\n\n"
        "Generated by `repro.experiments.report.generate_report` at scale "
        f"`{scale.name}` on the simulated HiKey 970 platform.  Absolute\n"
        "numbers come from the simulation substrate; the comparisons check\n"
        "the paper's *shapes* (who wins, by roughly what factor, where\n"
        "crossovers fall).\n"
    )

    def record_section_wall(title: str, elapsed_s: float) -> None:
        if registry is not None:
            registry.gauge("report_section_wall_s", section=title).set(elapsed_s)

    def run(title, paper_claim, fn):
        say(f"[report] {title} ...")
        # Wall-clock section timings are reporting metadata, not results.
        start = time.time()  # repro-lint: ignore[DET003]
        body = fn()
        elapsed_s = time.time() - start  # repro-lint: ignore[DET003]
        record_section_wall(title, elapsed_s)
        sections.append(_section(title, paper_claim, body, elapsed_s))

    run(
        "Fig. 1 — Motivational example",
        "adi is coolest on the big cluster, seidel-2d (slightly) on LITTLE; "
        "with a heavy background the preference changes (per-cluster DVFS).",
        lambda: run_motivation(scale.motivation, assets.platform).report(),
    )
    run(
        "Fig. 3 — NAS grid search",
        "best topology: 4 hidden layers x 64 neurons.",
        lambda: run_nas(assets, scale.nas).report(),
    )
    run(
        "Fig. 5 — Worst-case migration overhead",
        "max < 4 %, average 0.1 %; dedup/facesim can go negative.",
        lambda: run_migration_overhead(scale.migration, assets.platform).report(),
    )
    run(
        "Fig. 7 — Illustrative example (IL vs RL)",
        "TOP-IL consistently selects the optimal cluster; TOP-RL "
        "oscillates, raising temperature during suboptimal intervals.",
        lambda: run_illustrative(assets, scale.illustrative).report(),
    )
    run(
        "Fig. 8 — Main experiment (mixed workloads, fan and no fan) "
        "and Fig. 10 — CPU time per VF level",
        "TOP-IL reduces avg temperature by up to 17 degC vs GTS/ondemand at "
        "slightly more violations; powersave is coolest but violates most; "
        "TOP-RL matches TOP-IL's temperature with 63-89 % more violations; "
        "independent of cooling.  GTS/ondemand concentrates CPU time at the "
        "top big VF level; powersave at the lowest levels on both clusters.",
        lambda: _main_and_usage(assets, scale),
    )
    run(
        "Fig. 11 — Single-application workloads (unseen apps)",
        "only TOP-IL reaches zero violations at low temperature; powersave "
        "violates everything except canneal; TOP-RL violates ~33 % of runs.",
        lambda: run_single_app(assets, scale.single_app).report(),
    )
    run(
        "Sec. 7.4 — Model evaluation (held-out AoIs)",
        "mapping within 1 degC of the optimum in 82 +/- 5 % of cases; "
        "mean excess 0.5 +/- 0.2 degC.",
        lambda: run_model_eval(assets, scale.model_eval).report(),
    )
    run(
        "Fig. 12 — Run-time overhead",
        "DVFS loop scales with the app count (8.7 ms/s worst case); the "
        "NPU-batched migration policy stays flat (8.6 ms/s); total <= 1.7 %.",
        lambda: run_overhead(assets, scale.overhead).report(),
    )

    say("[report] ablations ...")
    start = time.time()  # repro-lint: ignore[DET003]
    grids = _collect_grids(assets, scale.ablation)
    bodies = [
        run_label_ablation(assets, scale.ablation, grids).report(),
        run_feature_ablation(assets, scale.ablation, grids).report(),
        run_period_ablation(assets, scale.ablation).report(),
        run_migration_granularity_ablation(assets, scale.ablation).report(),
        run_source_coverage_ablation(assets, scale.ablation, grids).report(),
        run_noise_ablation(assets, scale.ablation, grids).report(),
    ]
    ablations_elapsed_s = time.time() - start  # repro-lint: ignore[DET003]
    record_section_wall("Ablations — design choices", ablations_elapsed_s)
    sections.append(
        _section(
            "Ablations — design choices",
            "not in the paper; quantify the soft labels (Eq. 4), the "
            "aspect-c features, the 500 ms / 50 ms periods, the "
            "one-migration-per-epoch rule, the exhaustive source coverage "
            "(no-DAgger claim), and the alpha-vs-noise trade-off.",
            "\n\n".join(bodies),
            ablations_elapsed_s,
        )
    )

    from repro.experiments.ablation import (
        run_rl_reward_ablation,
        run_rl_variant_ablation,
    )
    from repro.experiments.optimality import OptimalityConfig, run_optimality_gap
    from repro.experiments.robustness import AmbientConfig, run_ambient_robustness
    from repro.experiments.stability import StabilityConfig, run_stability

    extension_runs = [
        (
            "Extension — optimality gap vs. privileged oracle",
            "the run-time analogue of Sec. 7.4: TOP-IL should track an "
            "oracle that sees the true models and solves the thermal "
            "steady state.",
            lambda: run_optimality_gap(
                assets,
                OptimalityConfig.smoke()
                if scale.name == "smoke"
                else OptimalityConfig(),
            ).report(),
        ),
        (
            "Extension — policy stability metrics",
            "quantifies the paper's stability claim: IL migrates less, "
            "oscillates less, and dips QoS less than online-learning RL.",
            lambda: run_stability(
                assets,
                StabilityConfig.smoke()
                if scale.name == "smoke"
                else StabilityConfig(),
            ).report(),
        ),
        (
            "Extension — ambient-temperature robustness",
            "the policy's features contain no temperature, so decisions "
            "are ambient-independent and QoS holds at any ambient.",
            lambda: run_ambient_robustness(
                assets,
                AmbientConfig.smoke()
                if scale.name == "smoke"
                else AmbientConfig(),
            ).report(),
        ),
        (
            "Extension — fault-injection resilience",
            "graceful degradation under sensor, NPU, and deadline faults: "
            "temperature and QoS degrade smoothly with the fault rate while "
            "the CPU-fallback, safe-mode, and DTM fail-safe paths absorb "
            "the failures.",
            lambda: run_resilience(
                assets, scale.resilience, registry=registry
            ).report(),
        ),
        (
            "Extension — RL reward and learner variants",
            "the -200 penalty's trade-off, and Double Q-learning as a "
            "stronger learner that still does not fix the structural "
            "instability.",
            lambda: (
                run_rl_reward_ablation(assets, scale.ablation).report()
                + "\n\n"
                + run_rl_variant_ablation(assets, scale.ablation).report()
            ),
        ),
    ]
    for title, claim, fn in extension_runs:
        run(title, claim, fn)
    return header + "\n" + "\n".join(sections)
