"""Fig. 8 (+ Fig. 10 data) — the main experiment: parallel mixed workloads.

A mixed workload of randomly selected PARSEC + Polybench applications with
random QoS targets and Poisson arrivals is executed under all four
techniques, at several arrival rates, with three repetitions (each using a
model / Q-table trained with a different random seed), with active (fan)
and passive (no fan) cooling.  Reported per technique: average temperature
and the number of QoS-violating applications (mean +/- std over
repetitions), plus the CPU-time-per-VF-level distribution (Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.assets import AssetStore
from repro.experiments.parallel import BatchCellPlan, run_cells
from repro.governors.base import Technique
from repro.governors.techniques import GTSOndemand, GTSPowersave
from repro.il.technique import TopIL
from repro.metrics.cputime import CpuTimeByVF
from repro.obs.config import Observability
from repro.platform.description import Platform
from repro.platform.registry import spec_for_platform
from repro.rl.technique import TopRL
from repro.store import ArtifactKey, cell_artifact_key
from repro.thermal import CoolingConfig, FAN_COOLING, PASSIVE_COOLING
from repro.utils.rng import RandomSource
from repro.utils.tables import ascii_table
from repro.workloads.generator import mixed_workload
from repro.workloads.runner import (
    finalize_run,
    prepare_run,
    run_slug,
    run_workload,
)

EXPERIMENT_NAME = "main_mixed"

TECHNIQUE_NAMES = ("TOP-IL", "TOP-RL", "GTS/ondemand", "GTS/powersave")

#: Techniques that require a big.LITTLE topology: GTS is the Arm
#: big.LITTLE scheduler and the RL state quantizer encodes the two-cluster
#: structure.  TOP-IL (and the QoS DVFS loop it builds on) is
#: cluster-count-agnostic.
_BIG_LITTLE_TECHNIQUES = ("TOP-RL", "GTS/ondemand", "GTS/powersave")


def technique_supported(name: str, platform: Platform) -> bool:
    """Whether technique ``name`` applies to ``platform``'s topology."""
    if name in _BIG_LITTLE_TECHNIQUES:
        return {"big", "LITTLE"} <= set(platform.cluster_names)
    return True


def supported_techniques(
    platform: Platform, names: Sequence[str] = TECHNIQUE_NAMES
) -> Tuple[str, ...]:
    """The subset of ``names`` applicable to ``platform``, order kept."""
    return tuple(n for n in names if technique_supported(n, platform))


@dataclass
class MainMixedConfig:
    n_apps: int = 20
    arrival_rates: Sequence[float] = (1.0 / 45.0, 1.0 / 25.0, 1.0 / 12.0)
    repetitions: int = 3
    coolings: Sequence[CoolingConfig] = (FAN_COOLING, PASSIVE_COOLING)
    instruction_scale: float = 1.0
    workload_seed: int = 11
    techniques: Sequence[str] = TECHNIQUE_NAMES

    @classmethod
    def smoke(cls) -> "MainMixedConfig":
        return cls(
            n_apps=6,
            arrival_rates=(1.0 / 6.0,),
            repetitions=2,
            coolings=(FAN_COOLING,),
            instruction_scale=0.02,
        )

    @classmethod
    def paper(cls) -> "MainMixedConfig":
        return cls()


@dataclass
class TechniqueAggregate:
    """Per-(technique, cooling) aggregate over rates and repetitions."""

    technique: str
    cooling: str
    mean_temp_c: float
    std_temp_c: float
    mean_violations: float
    std_violations: float
    mean_violation_fraction: float
    cpu_time_by_vf: CpuTimeByVF
    dtm_throttle_events: int
    mean_utilization: float
    peak_utilization: float


@dataclass
class MainMixedResult:
    config: MainMixedConfig
    aggregates: List[TechniqueAggregate] = field(default_factory=list)
    #: raw rows: (technique, cooling, rate, repetition, mean temp, violations)
    raw: List[Tuple[str, str, float, int, float, int]] = field(default_factory=list)
    #: configured techniques that do not apply to the platform's topology
    #: (e.g. GTS on a platform without big.LITTLE clusters)
    skipped_techniques: Tuple[str, ...] = ()

    def aggregate(self, technique: str, cooling: str) -> TechniqueAggregate:
        for agg in self.aggregates:
            if agg.technique == technique and agg.cooling == cooling:
                return agg
        raise KeyError((technique, cooling))

    def report(self) -> str:
        rows = [
            (
                a.technique,
                a.cooling,
                f"{a.mean_temp_c:.1f} +/- {a.std_temp_c:.1f} C",
                f"{a.mean_violations:.1f} +/- {a.std_violations:.1f}",
                f"{100 * a.mean_violation_fraction:.0f} %",
                a.dtm_throttle_events,
            )
            for a in self.aggregates
        ]
        table = ascii_table(
            ["technique", "cooling", "avg temp", "QoS violations", "violation %",
             "throttle events"],
            rows,
        )
        if self.skipped_techniques:
            table += (
                "\nskipped (not applicable to this platform): "
                + ", ".join(self.skipped_techniques)
            )
        return table

    def frequency_usage_report(self, cooling: str = "no_fan") -> str:
        """Fig. 10: CPU time per cluster and VF level per technique."""
        rows = []
        for agg in self.aggregates:
            if agg.cooling != cooling:
                continue
            usage = agg.cpu_time_by_vf
            for (cluster, freq), seconds in sorted(usage.seconds.items()):
                rows.append(
                    (
                        agg.technique,
                        cluster,
                        f"{freq / 1e9:.2f} GHz",
                        f"{seconds:.1f} s",
                        f"{100 * usage.fraction(cluster, freq):.0f} %",
                    )
                )
        return ascii_table(
            ["technique", "cluster", "VF level", "CPU time", "share"], rows
        )


def _make_technique(name: str, assets: AssetStore, repetition: int, seed: int) -> Technique:
    """Instantiate one technique; learned ones use the repetition's model.

    On registry platforms without an NPU, TOP-IL runs its inference on a
    CPU core (the spec's management-overhead model); everywhere else the
    default NPU latency model applies unchanged.
    """
    if name == "TOP-IL":
        models = assets.models()
        spec = spec_for_platform(assets.platform)
        overhead = None
        if spec is not None and not spec.npu.present:
            overhead = spec.management_overhead_model()
        return TopIL(models[repetition % len(models)], overhead_model=overhead)
    if name == "TOP-RL":
        qtables = assets.qtables()
        return TopRL(
            qtable=qtables[repetition % len(qtables)].copy(),
            rng=RandomSource(seed).child(f"rl-run-{repetition}"),
        )
    if name == "GTS/ondemand":
        return GTSOndemand()
    if name == "GTS/powersave":
        return GTSPowersave()
    raise ValueError(f"unknown technique {name!r}")


# Shared read-only state for the fan-out workers, installed once per worker
# process by the pool initializer (and once in-process on the serial path).
_WORKER_STATE: Dict[str, object] = {}


def _init_main_mixed_worker(assets: AssetStore, config: MainMixedConfig) -> None:
    _WORKER_STATE["assets"] = assets
    _WORKER_STATE["config"] = config


def _run_main_mixed_cell(cell: Tuple[CoolingConfig, float, int, str]):
    """One (cooling, rate, repetition, technique) simulation -> summary.

    Every input is derived from the cell coordinates and the shared config
    seeds, so the result is independent of scheduling and worker identity.
    """
    cooling, rate, rep, name = cell
    assets: AssetStore = _WORKER_STATE["assets"]  # type: ignore[assignment]
    config: MainMixedConfig = _WORKER_STATE["config"]  # type: ignore[assignment]
    workload = mixed_workload(
        assets.platform,
        n_apps=config.n_apps,
        arrival_rate_per_s=rate,
        seed=config.workload_seed + rep,
        instruction_scale=config.instruction_scale,
    )
    technique = _make_technique(name, assets, rep, config.workload_seed + rep)
    # Traced runs put their per-cell artifacts (events, Chrome trace,
    # manifest) under <out_dir>/main_mixed/; the parent merges the cell
    # manifests into one grid manifest after run_cells returns.
    run_label = None
    if Observability.from_env().enabled:
        run_label = EXPERIMENT_NAME + "/" + run_slug(
            f"{cooling.name}-rate{rate:.4f}-rep{rep}-{name}"
        )
    run = run_workload(
        assets.platform,
        technique,
        workload,
        cooling=cooling,
        seed=config.workload_seed + rep,
        run_label=run_label,
    )
    return run.summary


def _batch_plan_main_mixed_cell(
    cell: Tuple[CoolingConfig, float, int, str]
) -> Optional[BatchCellPlan]:
    """Lockstep plan for one grid cell (``backend="batched"``).

    Builds the same workload and technique as :func:`_run_main_mixed_cell`
    but splits the run into ``prepare_run`` (armed simulator for the
    batch) and ``finalize_run`` (summary extraction afterwards).  Traced
    cells return ``None`` — they must write per-cell artifacts, which only
    the scalar worker does.  Learned techniques (TOP-IL / TOP-RL) attach
    controllers the lockstep kernel does not recognize; they are rejected
    by the backend's eligibility probe and fall back per-cell.
    """
    if Observability.from_env().enabled:
        return None
    cooling, rate, rep, name = cell
    assets: AssetStore = _WORKER_STATE["assets"]  # type: ignore[assignment]
    config: MainMixedConfig = _WORKER_STATE["config"]  # type: ignore[assignment]
    seed = config.workload_seed + rep
    workload = mixed_workload(
        assets.platform,
        n_apps=config.n_apps,
        arrival_rate_per_s=rate,
        seed=seed,
        instruction_scale=config.instruction_scale,
    )
    technique = _make_technique(name, assets, rep, seed)

    def prepare():
        return prepare_run(
            assets.platform, technique, workload, cooling=cooling, seed=seed
        )

    def finalize(sim):
        return finalize_run(sim, technique, workload, seed=seed).summary

    return BatchCellPlan(prepare=prepare, finalize=finalize, timeout_s=7200.0)


def run_main_mixed(
    assets: AssetStore,
    config: MainMixedConfig = MainMixedConfig(),
    parallel: Optional[bool] = None,
    n_workers: Optional[int] = None,
    backend: str = "auto",
) -> MainMixedResult:
    """Run the full technique x rate x repetition x cooling grid.

    Cells fan out over a process pool (see
    :mod:`repro.experiments.parallel`); each cell is seed-stable, so the
    aggregates are identical to the serial nested loop.

    Args:
        assets: Trained models / Q-tables plus the platform, shipped once
            per worker through the pool initializer.
        config: Grid definition; ``MainMixedConfig.smoke()`` is the small
            CI-sized grid, ``MainMixedConfig.paper()`` the full Fig. 8 grid.
        parallel: Force the fork pool on/off; ``None`` follows
            ``REPRO_PARALLEL``.
        n_workers: Pool size; ``None`` means one worker per CPU.
        backend: ``"auto"`` (serial / fork pool) or ``"batched"`` — the
            lockstep NumPy backend that advances all GTS cells of the grid
            in one :class:`~repro.sim.batch.BatchSimulator`, bit-identical
            to serial; learned-technique and traced cells fall back to the
            scalar path automatically.

    Returns:
        A :class:`MainMixedResult` with per-(technique, cooling) aggregates
        and the raw per-cell rows.  When tracing is on (``REPRO_TRACE=1``),
        each cell additionally writes its trace artifacts and manifest under
        ``<out_dir>/main_mixed/``, merged into
        ``<out_dir>/main_mixed.manifest.json``.
    """
    # Restrict the grid to techniques the platform's topology supports
    # (identity on big.LITTLE platforms, so HiKey grids are unchanged).
    techniques = supported_techniques(assets.platform, config.techniques)
    skipped = tuple(n for n in config.techniques if n not in techniques)
    if not techniques:
        raise ValueError(
            f"none of the configured techniques {tuple(config.techniques)} "
            f"apply to platform {assets.platform.name!r}"
        )
    cells = [
        (cooling, rate, rep, name)
        for cooling in config.coolings
        for rate in config.arrival_rates
        for rep in range(config.repetitions)
        for name in techniques
    ]

    def cell_key(cell: Tuple[CoolingConfig, float, int, str]) -> ArtifactKey:
        # The cell tuple (cooling config, rate, repetition, technique) plus
        # the non-grid config knobs cover everything a summary depends on;
        # grid *shape* (which rates, how many reps) stays out of the key so
        # extending the grid reuses already-computed cells.
        return cell_artifact_key(
            EXPERIMENT_NAME,
            cell,
            config={
                "n_apps": config.n_apps,
                "instruction_scale": config.instruction_scale,
            },
            assets_config=assets.config.signature(),
            platform=assets.platform,
            seed=config.workload_seed,
        )

    summaries = run_cells(
        cells,
        _run_main_mixed_cell,
        init=_init_main_mixed_worker,
        init_args=(assets, config),
        parallel=parallel,
        n_workers=n_workers,
        experiment=EXPERIMENT_NAME,
        store=assets.artifacts,
        cell_key=cell_key,
        backend=backend,
        batch_plan=_batch_plan_main_mixed_cell,
    )

    # Aggregate in the cells' nested order — the same order the serial
    # loop used, so means/stds/merges accumulate identically.
    result = MainMixedResult(config=config, skipped_techniques=skipped)
    summary_iter = iter(summaries)
    for cooling in config.coolings:
        per_technique: Dict[str, Dict[str, list]] = {
            name: {"temps": [], "violations": [], "fracs": [],
                   "usage": CpuTimeByVF(), "throttles": 0,
                   "utils": [], "peaks": []}
            for name in techniques
        }
        for rate in config.arrival_rates:
            for rep in range(config.repetitions):
                for name in techniques:
                    s = next(summary_iter)
                    bucket = per_technique[name]
                    bucket["temps"].append(s.mean_temp_c)
                    bucket["violations"].append(s.n_qos_violations)
                    bucket["fracs"].append(s.violation_fraction)
                    bucket["usage"] = bucket["usage"].merge(s.cpu_time_by_vf)
                    bucket["throttles"] += s.dtm_throttle_events
                    bucket["utils"].append(s.mean_utilization)
                    bucket["peaks"].append(s.peak_utilization)
                    result.raw.append(
                        (name, cooling.name, rate, rep, s.mean_temp_c,
                         s.n_qos_violations)
                    )
        for name in techniques:
            bucket = per_technique[name]
            result.aggregates.append(
                TechniqueAggregate(
                    technique=name,
                    cooling=cooling.name,
                    mean_temp_c=float(np.mean(bucket["temps"])),
                    std_temp_c=float(np.std(bucket["temps"])),
                    mean_violations=float(np.mean(bucket["violations"])),
                    std_violations=float(np.std(bucket["violations"])),
                    mean_violation_fraction=float(np.mean(bucket["fracs"])),
                    cpu_time_by_vf=bucket["usage"],
                    dtm_throttle_events=bucket["throttles"],
                    mean_utilization=float(np.mean(bucket["utils"])),
                    peak_utilization=float(np.max(bucket["peaks"])),
                )
            )
    return result
