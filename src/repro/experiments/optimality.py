"""Optimality gap: TOP-IL vs. the privileged oracle static mapping.

Extension beyond the paper: the run-time analogue of the Sec. 7.4 model
evaluation.  Both techniques use the same QoS DVFS loop; they differ only
in mapping decisions.  The oracle sees the true application models and
solves the thermal steady state; TOP-IL sees only run-time counters.  The
gap in average temperature is the price of learning from demonstrations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.apps.catalog import HELDOUT_APPS, PARSEC_APPS
from repro.experiments.assets import AssetStore
from repro.governors.oracle import OracleStaticMapping
from repro.il.technique import TopIL
from repro.thermal import CoolingConfig, FAN_COOLING
from repro.utils.tables import ascii_table
from repro.workloads.generator import single_app_workload
from repro.workloads.runner import run_workload


@dataclass
class OptimalityConfig:
    apps: Sequence[str] = PARSEC_APPS + HELDOUT_APPS
    instruction_scale: float = 0.1
    qos_fraction_of_little_max: float = 0.75
    seed: int = 31

    @classmethod
    def smoke(cls) -> "OptimalityConfig":
        return cls(apps=("adi", "canneal", "jacobi-2d"), instruction_scale=0.02)

    @classmethod
    def paper(cls) -> "OptimalityConfig":
        return cls(instruction_scale=0.5)


@dataclass
class OptimalityResult:
    #: (app, oracle temp, TOP-IL temp, gap, oracle violations, il violations)
    rows: List[Tuple[str, float, float, float, int, int]] = field(
        default_factory=list
    )

    def mean_gap_c(self) -> float:
        return float(np.mean([r[3] for r in self.rows]))

    def max_gap_c(self) -> float:
        return float(np.max([r[3] for r in self.rows]))

    def il_violations(self) -> int:
        return sum(r[5] for r in self.rows)

    def report(self) -> str:
        table = ascii_table(
            ["app", "oracle temp", "TOP-IL temp", "gap", "oracle viol",
             "IL viol"],
            [
                (app, f"{oracle:.2f} C", f"{il:.2f} C", f"{gap:+.2f} C", ov, iv)
                for app, oracle, il, gap, ov, iv in self.rows
            ],
        )
        return (
            f"{table}\n"
            f"mean gap {self.mean_gap_c():+.2f} C, "
            f"max gap {self.max_gap_c():+.2f} C"
        )


def run_optimality_gap(
    assets: AssetStore,
    config: OptimalityConfig = OptimalityConfig(),
    cooling: CoolingConfig = FAN_COOLING,
) -> OptimalityResult:
    """Run every app under the oracle and under TOP-IL; report the gaps."""
    platform = assets.platform
    model = assets.models()[0]
    result = OptimalityResult()
    for app_name in config.apps:
        workload = single_app_workload(
            app_name,
            platform,
            qos_fraction_of_little_max=config.qos_fraction_of_little_max,
            instruction_scale=config.instruction_scale,
        )
        oracle_run = run_workload(
            platform, OracleStaticMapping(), workload, cooling=cooling,
            seed=config.seed,
        )
        il_run = run_workload(
            platform, TopIL(model), workload, cooling=cooling, seed=config.seed
        )
        result.rows.append(
            (
                app_name,
                oracle_run.summary.mean_temp_c,
                il_run.summary.mean_temp_c,
                il_run.summary.mean_temp_c - oracle_run.summary.mean_temp_c,
                oracle_run.summary.n_qos_violations,
                il_run.summary.n_qos_violations,
            )
        )
    return result
