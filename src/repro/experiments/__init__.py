"""Experiment runners — one per figure/table of the paper's evaluation.

Every module exposes a ``run_*`` function taking an experiment config with
two standard constructors: ``smoke()`` (CI-sized, seconds to run) and
``paper()`` (full-sized, reproduces the paper's setup).  Results are plain
dataclasses with an ``as_rows()``/``report()`` rendering of the same
rows/series the paper's figure shows.

==============  ===========================================================
module          paper artifact
==============  ===========================================================
motivation      Fig. 1  — optimal mapping depends on app and background
nas             Fig. 3  — NN topology grid search
migration       Fig. 5  — worst-case ping-pong migration overhead
illustrative    Fig. 7  — IL vs RL mapping stability (adi / seidel-2d)
main_mixed      Fig. 8  — mixed workloads, fan and no fan (+ Fig. 10 data)
single_app      Fig. 11 — unseen single-application workloads
model_eval      Sec. 7.4 — held-out mapping quality of the NN
overhead        Fig. 12 — run-time overhead vs number of applications
ablation        design-choice studies: labels, features, periods,
                migration granularity, source coverage (no-DAgger),
                measurement noise, RL reward/learner variants
stability       extension — IL-vs-RL stability metrics
optimality      extension — gap to a privileged oracle static mapping
robustness      extension — ambient-temperature robustness
report          run everything, render EXPERIMENTS.md
==============  ===========================================================
"""

from repro.experiments.assets import AssetStore, AssetConfig

__all__ = ["AssetStore", "AssetConfig"]

from repro.experiments.motivation import MotivationConfig, run_motivation
from repro.experiments.nas import NASConfig, run_nas, split_dataset_by_apps
from repro.experiments.migration import (
    MigrationOverheadConfig,
    run_migration_overhead,
)
from repro.experiments.illustrative import IllustrativeConfig, run_illustrative
from repro.experiments.main_mixed import MainMixedConfig, run_main_mixed
from repro.experiments.single_app import SingleAppConfig, run_single_app
from repro.experiments.model_eval import ModelEvalConfig, run_model_eval
from repro.experiments.overhead import OverheadConfig, run_overhead

__all__ += [
    "MotivationConfig",
    "run_motivation",
    "NASConfig",
    "run_nas",
    "split_dataset_by_apps",
    "MigrationOverheadConfig",
    "run_migration_overhead",
    "IllustrativeConfig",
    "run_illustrative",
    "MainMixedConfig",
    "run_main_mixed",
    "SingleAppConfig",
    "run_single_app",
    "ModelEvalConfig",
    "run_model_eval",
    "OverheadConfig",
    "run_overhead",
]

from repro.experiments.ablation import (
    AblationConfig,
    run_label_ablation,
    run_feature_ablation,
    run_period_ablation,
    run_migration_granularity_ablation,
    run_source_coverage_ablation,
    run_noise_ablation,
)

__all__ += [
    "AblationConfig",
    "run_label_ablation",
    "run_feature_ablation",
    "run_period_ablation",
    "run_migration_granularity_ablation",
    "run_source_coverage_ablation",
    "run_noise_ablation",
]

from repro.experiments.optimality import OptimalityConfig, run_optimality_gap

__all__ += ["OptimalityConfig", "run_optimality_gap"]

from repro.experiments.stability import StabilityConfig, run_stability

__all__ += ["StabilityConfig", "run_stability"]

from repro.experiments.ablation import run_rl_reward_ablation
from repro.experiments.robustness import AmbientConfig, run_ambient_robustness

__all__ += ["run_rl_reward_ablation", "AmbientConfig", "run_ambient_robustness"]

from repro.experiments.ablation import run_rl_variant_ablation

__all__ += ["run_rl_variant_ablation"]
