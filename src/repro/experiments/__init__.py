"""Experiment runners — one per figure/table of the paper's evaluation.

Every module exposes a ``run_*`` function taking an experiment config with
two standard constructors: ``smoke()`` (CI-sized, seconds to run) and
``paper()`` (full-sized, reproduces the paper's setup).  Results are plain
dataclasses with an ``as_rows()``/``report()`` rendering of the same
rows/series the paper's figure shows.

==============  ===========================================================
module          paper artifact
==============  ===========================================================
motivation      Fig. 1  — optimal mapping depends on app and background
nas             Fig. 3  — NN topology grid search
migration       Fig. 5  — worst-case ping-pong migration overhead
illustrative    Fig. 7  — IL vs RL mapping stability (adi / seidel-2d)
main_mixed      Fig. 8  — mixed workloads, fan and no fan (+ Fig. 10 data)
single_app      Fig. 11 — unseen single-application workloads
model_eval      Sec. 7.4 — held-out mapping quality of the NN
overhead        Fig. 12 — run-time overhead vs number of applications
ablation        design-choice studies: labels, features, periods,
                migration granularity, source coverage (no-DAgger),
                measurement noise, RL reward/learner variants
stability       extension — IL-vs-RL stability metrics
optimality      extension — gap to a privileged oracle static mapping
robustness      extension — ambient-temperature robustness
platforms       extension — cross-platform comparison (platform zoo)
chaos           extension — infrastructure chaos & crash recovery
report          run everything, render EXPERIMENTS.md
==============  ===========================================================
"""

from repro.experiments.assets import AssetStore, AssetConfig

__all__ = ["AssetStore", "AssetConfig"]

from repro.experiments.motivation import MotivationConfig, run_motivation
from repro.experiments.nas import NASConfig, run_nas, split_dataset_by_apps
from repro.experiments.migration import (
    MigrationOverheadConfig,
    run_migration_overhead,
)
from repro.experiments.illustrative import IllustrativeConfig, run_illustrative
from repro.experiments.main_mixed import MainMixedConfig, run_main_mixed
from repro.experiments.single_app import SingleAppConfig, run_single_app
from repro.experiments.model_eval import ModelEvalConfig, run_model_eval
from repro.experiments.overhead import OverheadConfig, run_overhead

__all__ += [
    "MotivationConfig",
    "run_motivation",
    "NASConfig",
    "run_nas",
    "split_dataset_by_apps",
    "MigrationOverheadConfig",
    "run_migration_overhead",
    "IllustrativeConfig",
    "run_illustrative",
    "MainMixedConfig",
    "run_main_mixed",
    "SingleAppConfig",
    "run_single_app",
    "ModelEvalConfig",
    "run_model_eval",
    "OverheadConfig",
    "run_overhead",
]

from repro.experiments.ablation import (
    AblationConfig,
    run_label_ablation,
    run_feature_ablation,
    run_period_ablation,
    run_migration_granularity_ablation,
    run_source_coverage_ablation,
    run_noise_ablation,
)

__all__ += [
    "AblationConfig",
    "run_label_ablation",
    "run_feature_ablation",
    "run_period_ablation",
    "run_migration_granularity_ablation",
    "run_source_coverage_ablation",
    "run_noise_ablation",
]

from repro.experiments.optimality import OptimalityConfig, run_optimality_gap

__all__ += ["OptimalityConfig", "run_optimality_gap"]

from repro.experiments.stability import StabilityConfig, run_stability

__all__ += ["StabilityConfig", "run_stability"]

from repro.experiments.ablation import run_rl_reward_ablation
from repro.experiments.robustness import AmbientConfig, run_ambient_robustness

__all__ += ["run_rl_reward_ablation", "AmbientConfig", "run_ambient_robustness"]

from repro.experiments.ablation import run_rl_variant_ablation

__all__ += ["run_rl_variant_ablation"]

from repro.experiments.resilience import ResilienceConfig, run_resilience

__all__ += ["ResilienceConfig", "run_resilience"]

from repro.experiments.platforms import (
    PlatformComparisonConfig,
    run_platform_comparison,
)

__all__ += ["PlatformComparisonConfig", "run_platform_comparison"]

from repro.experiments.chaos import ChaosConfig, run_chaos

__all__ += ["ChaosConfig", "run_chaos"]


# --------------------------------------------------------------------------
# Experiment registry
#
# One ExperimentSpec per runnable experiment: the CLI's ``list``/``run``
# commands and the report generator all iterate this registry, so an
# experiment's name, report-section title, paper claim, and runner live in
# exactly one place.  Bodies take the full ReportScale (each picks the
# config slice it needs) plus an optional metrics registry; they return the
# rendered ASCII body of their report section.

from dataclasses import dataclass as _dataclass
from typing import (
    TYPE_CHECKING as _TYPE_CHECKING,
    Callable as _Callable,
    Dict as _Dict,
    Optional as _Optional,
    Tuple as _Tuple,
)

if _TYPE_CHECKING:
    from repro.experiments.report import ReportScale
    from repro.obs.metrics import MetricsRegistry

#: ``body(assets, scale, registry) -> rendered section body``.
SectionBody = _Callable[
    [AssetStore, "ReportScale", "_Optional[MetricsRegistry]"], str
]


@_dataclass(frozen=True)
class ExperimentSpec:
    """One experiment: CLI name, report section, and runner in one row.

    Attributes:
        name: CLI name (``python -m repro.cli run <name>``).
        title: Report section heading (``## <title>``).
        paper_claim: The paper's claim the section checks, quoted verbatim
            in the report above the measured numbers.
        body: Scale-aware runner returning the section's ASCII body.
        in_report: Whether ``report`` renders a section for it (``fig10``
            is run-only: its data is folded into the fig8 section).
        uses_store: Whether the experiment's grid cells participate in the
            content-addressed artifact store (warm re-runs skip them).
    """

    name: str
    title: str
    paper_claim: str
    body: SectionBody
    in_report: bool = True
    uses_store: bool = False


def _fig1_body(assets, scale, registry):
    return run_motivation(scale.motivation, assets.platform).report()


def _fig3_body(assets, scale, registry):
    return run_nas(assets, scale.nas).report()


def _fig5_body(assets, scale, registry):
    return run_migration_overhead(scale.migration, assets.platform).report()


def _fig7_body(assets, scale, registry):
    return run_illustrative(assets, scale.illustrative).report()


def _fig8_body(assets, scale, registry):
    """Fig. 8 tables plus the Fig. 10 VF-usage distribution (one grid)."""
    result = run_main_mixed(assets, scale.main_mixed)
    coolings = [c.name for c in scale.main_mixed.coolings]
    usage_cooling = "no_fan" if "no_fan" in coolings else coolings[0]
    return (
        result.report()
        + "\n\nCPU time per cluster and VF level "
        + f"({usage_cooling}):\n"
        + result.frequency_usage_report(cooling=usage_cooling)
    )


def _fig10_body(assets, scale, registry):
    return run_main_mixed(assets, scale.main_mixed).frequency_usage_report(
        cooling=scale.main_mixed.coolings[-1].name
    )


def _fig11_body(assets, scale, registry):
    return run_single_app(assets, scale.single_app).report()


def _model_eval_body(assets, scale, registry):
    return run_model_eval(assets, scale.model_eval).report()


def _fig12_body(assets, scale, registry):
    return run_overhead(assets, scale.overhead).report()


def _ablations_body(assets, scale, registry):
    """All six design-choice ablations over one shared trace-grid set."""
    from repro.experiments.ablation import _collect_grids

    grids = _collect_grids(assets, scale.ablation)
    return "\n\n".join(
        [
            run_label_ablation(assets, scale.ablation, grids).report(),
            run_feature_ablation(assets, scale.ablation, grids).report(),
            run_period_ablation(assets, scale.ablation).report(),
            run_migration_granularity_ablation(assets, scale.ablation).report(),
            run_source_coverage_ablation(assets, scale.ablation, grids).report(),
            run_noise_ablation(assets, scale.ablation, grids).report(),
        ]
    )


def _optimality_body(assets, scale, registry):
    config = (
        OptimalityConfig.smoke() if scale.name == "smoke" else OptimalityConfig()
    )
    return run_optimality_gap(assets, config).report()


def _stability_body(assets, scale, registry):
    config = (
        StabilityConfig.smoke() if scale.name == "smoke" else StabilityConfig()
    )
    return run_stability(assets, config).report()


def _ambient_body(assets, scale, registry):
    config = AmbientConfig.smoke() if scale.name == "smoke" else AmbientConfig()
    return run_ambient_robustness(assets, config).report()


def _resilience_body(assets, scale, registry):
    return run_resilience(assets, scale.resilience, registry=registry).report()


def _chaos_body(assets, scale, registry):
    return run_chaos(assets, scale.chaos, registry=registry).report()


def _platforms_body(assets, scale, registry):
    return run_platform_comparison(assets, scale.platforms).report()


def _rl_variants_body(assets, scale, registry):
    return (
        run_rl_reward_ablation(assets, scale.ablation).report()
        + "\n\n"
        + run_rl_variant_ablation(assets, scale.ablation).report()
    )


#: Registry rows in report-section order.
EXPERIMENT_SPECS: _Tuple[ExperimentSpec, ...] = (
    ExperimentSpec(
        name="fig1",
        title="Fig. 1 — Motivational example",
        paper_claim=(
            "adi is coolest on the big cluster, seidel-2d (slightly) on "
            "LITTLE; with a heavy background the preference changes "
            "(per-cluster DVFS)."
        ),
        body=_fig1_body,
    ),
    ExperimentSpec(
        name="fig3",
        title="Fig. 3 — NAS grid search",
        paper_claim="best topology: 4 hidden layers x 64 neurons.",
        body=_fig3_body,
    ),
    ExperimentSpec(
        name="fig5",
        title="Fig. 5 — Worst-case migration overhead",
        paper_claim="max < 4 %, average 0.1 %; dedup/facesim can go negative.",
        body=_fig5_body,
    ),
    ExperimentSpec(
        name="fig7",
        title="Fig. 7 — Illustrative example (IL vs RL)",
        paper_claim=(
            "TOP-IL consistently selects the optimal cluster; TOP-RL "
            "oscillates, raising temperature during suboptimal intervals."
        ),
        body=_fig7_body,
    ),
    ExperimentSpec(
        name="fig8",
        title=(
            "Fig. 8 — Main experiment (mixed workloads, fan and no fan) "
            "and Fig. 10 — CPU time per VF level"
        ),
        paper_claim=(
            "TOP-IL reduces avg temperature by up to 17 degC vs "
            "GTS/ondemand at slightly more violations; powersave is coolest "
            "but violates most; TOP-RL matches TOP-IL's temperature with "
            "63-89 % more violations; independent of cooling.  "
            "GTS/ondemand concentrates CPU time at the top big VF level; "
            "powersave at the lowest levels on both clusters."
        ),
        body=_fig8_body,
        uses_store=True,
    ),
    ExperimentSpec(
        name="fig10",
        title="Fig. 10 — CPU time per VF level",
        paper_claim=(
            "GTS/ondemand concentrates CPU time at the top big VF level; "
            "powersave at the lowest levels on both clusters."
        ),
        body=_fig10_body,
        in_report=False,  # folded into the fig8 section
        uses_store=True,
    ),
    ExperimentSpec(
        name="fig11",
        title="Fig. 11 — Single-application workloads (unseen apps)",
        paper_claim=(
            "only TOP-IL reaches zero violations at low temperature; "
            "powersave violates everything except canneal; TOP-RL violates "
            "~33 % of runs."
        ),
        body=_fig11_body,
    ),
    ExperimentSpec(
        name="model-eval",
        title="Sec. 7.4 — Model evaluation (held-out AoIs)",
        paper_claim=(
            "mapping within 1 degC of the optimum in 82 +/- 5 % of cases; "
            "mean excess 0.5 +/- 0.2 degC."
        ),
        body=_model_eval_body,
    ),
    ExperimentSpec(
        name="fig12",
        title="Fig. 12 — Run-time overhead",
        paper_claim=(
            "DVFS loop scales with the app count (8.7 ms/s worst case); "
            "the NPU-batched migration policy stays flat (8.6 ms/s); "
            "total <= 1.7 %."
        ),
        body=_fig12_body,
    ),
    ExperimentSpec(
        name="ablations",
        title="Ablations — design choices",
        paper_claim=(
            "not in the paper; quantify the soft labels (Eq. 4), the "
            "aspect-c features, the 500 ms / 50 ms periods, the "
            "one-migration-per-epoch rule, the exhaustive source coverage "
            "(no-DAgger claim), and the alpha-vs-noise trade-off."
        ),
        body=_ablations_body,
        uses_store=True,
    ),
    ExperimentSpec(
        name="optimality",
        title="Extension — optimality gap vs. privileged oracle",
        paper_claim=(
            "the run-time analogue of Sec. 7.4: TOP-IL should track an "
            "oracle that sees the true models and solves the thermal "
            "steady state."
        ),
        body=_optimality_body,
    ),
    ExperimentSpec(
        name="stability",
        title="Extension — policy stability metrics",
        paper_claim=(
            "quantifies the paper's stability claim: IL migrates less, "
            "oscillates less, and dips QoS less than online-learning RL."
        ),
        body=_stability_body,
    ),
    ExperimentSpec(
        name="ambient",
        title="Extension — ambient-temperature robustness",
        paper_claim=(
            "the policy's features contain no temperature, so decisions "
            "are ambient-independent and QoS holds at any ambient."
        ),
        body=_ambient_body,
        uses_store=True,
    ),
    ExperimentSpec(
        name="resilience",
        title="Extension — fault-injection resilience",
        paper_claim=(
            "graceful degradation under sensor, NPU, and deadline faults: "
            "temperature and QoS degrade smoothly with the fault rate "
            "while the CPU-fallback, safe-mode, and DTM fail-safe paths "
            "absorb the failures."
        ),
        body=_resilience_body,
        uses_store=True,
    ),
    ExperimentSpec(
        name="chaos",
        title="Extension — infrastructure chaos & crash recovery",
        paper_claim=(
            "not in the paper (methodology hardening): the same grid run "
            "under deterministic host-level chaos — worker SIGKILLs, "
            "kills right after a checkpoint, torn and failing store "
            "writes, ENOSPC — completes via checkpoint resume and stays "
            "bit-identical to the chaos-free baseline."
        ),
        body=_chaos_body,
    ),
    ExperimentSpec(
        name="platforms",
        title="Extension — cross-platform comparison (platform zoo)",
        paper_claim=(
            "not in the paper (single-board evaluation); checks that "
            "nothing in TOP-IL is HiKey-specific by running the mixed "
            "workload on every registered platform — big.LITTLE with NPU, "
            "a tri-cluster phone SoC, and an NPU-less many-core grid."
        ),
        body=_platforms_body,
        uses_store=True,
    ),
    ExperimentSpec(
        name="rl-variants",
        title="Extension — RL reward and learner variants",
        paper_claim=(
            "the -200 penalty's trade-off, and Double Q-learning as a "
            "stronger learner that still does not fix the structural "
            "instability."
        ),
        body=_rl_variants_body,
    ),
)

#: Name -> spec lookup for the CLI.
EXPERIMENTS: _Dict[str, ExperimentSpec] = {
    spec.name: spec for spec in EXPERIMENT_SPECS
}

__all__ += ["ExperimentSpec", "EXPERIMENT_SPECS", "EXPERIMENTS", "SectionBody"]
