"""Ablation experiments for the design choices DESIGN.md calls out.

Four studies:

* **labels** — soft Eq.-4 labels (several alpha values) vs. hard one-hot
  labels, judged by held-out mapping quality (like Sec. 7.4);
* **features** — removing the f_tilde_{x\\AoI} features (aspect c) or the
  L2D feature (aspect a) from the model input;
* **periods** — sweeping the migration epoch and DVFS-loop period around
  the paper's 500 ms / 50 ms choices;
* **migration granularity** — one migration per epoch (the paper) vs.
  greedily executing every predicted improvement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.catalog import HELDOUT_APPS, TRAINING_APPS
from repro.experiments.assets import AssetStore
from repro.experiments.model_eval import _evaluate_model_on_grid
from repro.experiments.parallel import run_cells
from repro.il.ablation import (
    F_WO_AOI_FEATURES,
    L2D_FEATURE,
    GreedyMultiMigrationPolicy,
    train_masked_model,
)
from repro.il.dataset import DatasetBuilder, LabelConfig
from repro.il.pipeline import generate_scenarios
from repro.il.technique import TopIL
from repro.nn.training import TrainingConfig
from repro.store import ArtifactKey, cell_artifact_key
from repro.utils.floatcmp import is_exactly, is_zero
from repro.utils.rng import RandomSource
from repro.utils.tables import ascii_table
from repro.workloads.generator import mixed_workload
from repro.workloads.runner import run_workload


@dataclass
class AblationConfig:
    """Shared sizes for the ablation studies."""

    n_train_scenarios: int = 10
    n_test_scenarios: int = 4
    seed: int = 99
    training: TrainingConfig = field(
        default_factory=lambda: TrainingConfig(max_epochs=150, patience=20)
    )
    # Period sweep (paper values first).
    migration_periods_s: Sequence[float] = (0.5, 0.25, 1.0, 2.0)
    dvfs_periods_s: Sequence[float] = (0.05, 0.1, 0.2)
    workload_apps: int = 8
    instruction_scale: float = 0.03

    @classmethod
    def smoke(cls) -> "AblationConfig":
        return cls(n_train_scenarios=6, n_test_scenarios=3,
                   migration_periods_s=(0.5, 2.0), dvfs_periods_s=(0.05, 0.2))

    @classmethod
    def paper(cls) -> "AblationConfig":
        return cls(n_train_scenarios=40, n_test_scenarios=12)


@dataclass
class AblationRow:
    variant: str
    within_1c: float
    excess_c: float


@dataclass
class AblationResult:
    study: str
    rows: List[AblationRow] = field(default_factory=list)

    def get(self, variant: str) -> AblationRow:
        for row in self.rows:
            if row.variant == variant:
                return row
        raise KeyError(variant)

    def report(self) -> str:
        table = ascii_table(
            ["variant", "within 1C", "mean excess"],
            [
                (r.variant, f"{100 * r.within_1c:.1f} %", f"{r.excess_c:.2f} C")
                for r in self.rows
            ],
        )
        return f"[{self.study}]\n{table}"


def _collect_grids(assets: AssetStore, config: AblationConfig):
    """Training grids (training AoIs) and test grids (held-out AoIs)."""
    pipeline = assets.pipeline()
    rng = RandomSource(config.seed)
    train_scenarios = generate_scenarios(
        assets.platform, TRAINING_APPS, config.n_train_scenarios,
        rng.child("ablation-train"),
    )
    test_scenarios = generate_scenarios(
        assets.platform, HELDOUT_APPS, config.n_test_scenarios,
        rng.child("ablation-test"),
    )
    return (
        pipeline.collect_traces(train_scenarios),
        pipeline.collect_traces(test_scenarios),
    )


def _heldout_quality(model, test_grids, builder: DatasetBuilder) -> Tuple[float, float]:
    flags: List[bool] = []
    excesses: List[float] = []
    for grid in test_grids:
        w, e = _evaluate_model_on_grid(model, grid, builder, 1.0)
        flags.extend(w)
        excesses.extend(e)
    if not flags:
        raise ValueError("no comparable held-out cases")
    return float(np.mean(flags)), float(np.mean(excesses))


def run_label_ablation(
    assets: AssetStore,
    config: AblationConfig = AblationConfig(),
    grids=None,
) -> AblationResult:
    """Soft labels at several alphas vs. hard one-hot labels."""
    train_grids, test_grids = grids or _collect_grids(assets, config)
    eval_builder = DatasetBuilder(assets.platform)
    result = AblationResult(study="label ablation")
    variants = [
        ("soft alpha=1 (paper)", LabelConfig(alpha=1.0)),
        ("soft alpha=0.5", LabelConfig(alpha=0.5)),
        ("soft alpha=2", LabelConfig(alpha=2.0)),
        ("hard one-hot", LabelConfig(hard_labels=True)),
    ]
    for name, label_config in variants:
        builder = DatasetBuilder(assets.platform, label_config)
        dataset = builder.build(train_grids)
        model = train_masked_model(
            dataset, (), seed=config.seed, training=config.training
        )
        within, excess = _heldout_quality(model, test_grids, eval_builder)
        result.rows.append(AblationRow(name, within, excess))
    return result


def run_feature_ablation(
    assets: AssetStore,
    config: AblationConfig = AblationConfig(),
    grids=None,
) -> AblationResult:
    """Full features vs. dropping aspect-c or the L2D feature."""
    train_grids, test_grids = grids or _collect_grids(assets, config)
    builder = DatasetBuilder(assets.platform)
    dataset = builder.build(train_grids)
    result = AblationResult(study="feature ablation")
    variants = [
        ("full features (paper)", ()),
        ("no f_wo_aoi features", F_WO_AOI_FEATURES),
        ("no L2D feature", L2D_FEATURE),
        ("no f_wo_aoi, no L2D", F_WO_AOI_FEATURES + L2D_FEATURE),
    ]
    for name, mask in variants:
        model = train_masked_model(
            dataset, mask, seed=config.seed, training=config.training
        )
        within, excess = _heldout_quality(model, test_grids, builder)
        result.rows.append(AblationRow(name, within, excess))
    return result


@dataclass
class PeriodRow:
    migration_period_s: float
    dvfs_period_s: float
    mean_temp_c: float
    violations: int
    migrations: int


@dataclass
class PeriodAblationResult:
    rows: List[PeriodRow] = field(default_factory=list)

    def report(self) -> str:
        return ascii_table(
            ["migration period", "DVFS period", "avg temp", "violations",
             "migrations"],
            [
                (f"{r.migration_period_s * 1e3:.0f} ms",
                 f"{r.dvfs_period_s * 1e3:.0f} ms",
                 f"{r.mean_temp_c:.1f} C", r.violations, r.migrations)
                for r in self.rows
            ],
        )


# Shared read-only state for the period-sweep workers (pool initializer).
_PERIOD_STATE: Dict[str, object] = {}


def _init_period_worker(assets: AssetStore, config: AblationConfig) -> None:
    _PERIOD_STATE["assets"] = assets
    _PERIOD_STATE["config"] = config


def _run_period_cell(cell: Tuple[float, float]) -> PeriodRow:
    """One (migration period, DVFS period) point of the sweep."""
    mig_period_s, dvfs_period_s = cell
    assets: AssetStore = _PERIOD_STATE["assets"]  # type: ignore[assignment]
    config: AblationConfig = _PERIOD_STATE["config"]  # type: ignore[assignment]
    platform = assets.platform
    workload = mixed_workload(
        platform,
        n_apps=config.workload_apps,
        arrival_rate_per_s=1.0 / 8.0,
        seed=config.seed,
        instruction_scale=config.instruction_scale,
    )
    technique = TopIL(
        assets.models()[0],
        migration_period_s=mig_period_s,
        dvfs_period_s=dvfs_period_s,
    )
    run = run_workload(platform, technique, workload, seed=config.seed)
    return PeriodRow(
        migration_period_s=mig_period_s,
        dvfs_period_s=dvfs_period_s,
        mean_temp_c=run.summary.mean_temp_c,
        violations=run.summary.n_qos_violations,
        migrations=run.summary.migrations,
    )


def run_period_ablation(
    assets: AssetStore,
    config: AblationConfig = AblationConfig(),
    parallel: Optional[bool] = None,
    n_workers: Optional[int] = None,
) -> PeriodAblationResult:
    """Sweep the control periods around the paper's 500 ms / 50 ms.

    The grid cells are independent, seed-stable simulations, so they fan
    out over :func:`repro.experiments.parallel.run_cells`.
    """
    cells = [
        (mig_period, dvfs_period)
        for mig_period in config.migration_periods_s
        for dvfs_period in config.dvfs_periods_s
    ]

    def cell_key(cell: Tuple[float, float]) -> ArtifactKey:
        return cell_artifact_key(
            "period_ablation",
            cell,
            config={
                "workload_apps": config.workload_apps,
                "instruction_scale": config.instruction_scale,
            },
            assets_config=assets.config.signature(),
            platform=assets.platform,
            seed=config.seed,
        )

    rows = run_cells(
        cells,
        _run_period_cell,
        init=_init_period_worker,
        init_args=(assets, config),
        parallel=parallel,
        n_workers=n_workers,
        store=assets.artifacts,
        cell_key=cell_key,
    )
    return PeriodAblationResult(rows=list(rows))


@dataclass
class MigrationGranularityResult:
    rows: List[Tuple[str, float, int, int]] = field(default_factory=list)

    def get(self, variant: str) -> Tuple[str, float, int, int]:
        for row in self.rows:
            if row[0] == variant:
                return row
        raise KeyError(variant)

    def report(self) -> str:
        return ascii_table(
            ["variant", "avg temp", "violations", "migrations"],
            [
                (name, f"{temp:.1f} C", viol, mig)
                for name, temp, viol, mig in self.rows
            ],
        )


def run_migration_granularity_ablation(
    assets: AssetStore, config: AblationConfig = AblationConfig()
) -> MigrationGranularityResult:
    """One migration per epoch (paper) vs. greedy multi-migration."""
    platform = assets.platform
    model = assets.models()[0]
    workload = mixed_workload(
        platform,
        n_apps=config.workload_apps,
        arrival_rate_per_s=1.0 / 6.0,
        seed=config.seed,
        instruction_scale=config.instruction_scale,
    )
    result = MigrationGranularityResult()
    for name, policy_cls in (
        ("one per epoch (paper)", None),
        ("greedy multi-migration", GreedyMultiMigrationPolicy),
    ):
        technique = TopIL(model)
        if policy_cls is not None:
            technique.migration = policy_cls(
                model=model,
                period_s=technique.migration.period_s,
                dvfs_loop=technique.dvfs_loop,
                overhead_model=technique.migration.overhead_model,
            )
        run = run_workload(platform, technique, workload, seed=config.seed)
        result.rows.append(
            (
                name,
                run.summary.mean_temp_c,
                run.summary.n_qos_violations,
                run.summary.migrations,
            )
        )
    return result


def _optimal_source_only(dataset):
    """Keep only examples whose source core is the labeled optimum.

    This mimics naive behavioural cloning on optimal trajectories — the
    setting where DAgger-style corrections would normally be required.
    """
    import numpy as np

    from repro.il.dataset import ILDataset

    keep = []
    for i in range(len(dataset)):
        source = dataset.meta[i][1]
        if dataset.labels[i].max() > 0 and is_exactly(
            float(dataset.labels[i][source]), 1.0
        ):
            keep.append(i)
    return ILDataset(
        features=dataset.features[keep],
        labels=dataset.labels[keep],
        meta=[dataset.meta[i] for i in keep],
    )


def run_source_coverage_ablation(
    assets: AssetStore,
    config: AblationConfig = AblationConfig(),
    grids=None,
) -> AblationResult:
    """All-source training (the paper) vs. optimal-source-only training.

    The paper argues it needs no DAgger because one training example is
    created for *every* feasible source core, so the policy learns to
    recover from any mapping.  This ablation trains a model only on
    optimally-placed sources and evaluates both models exclusively on
    recovery cases (AoI on a suboptimal core).
    """
    train_grids, test_grids = grids or _collect_grids(assets, config)
    builder = DatasetBuilder(assets.platform)
    full = builder.build(train_grids)
    optimal_only = _optimal_source_only(full)
    result = AblationResult(study="source-coverage ablation (no-DAgger claim)")
    for name, dataset in (
        ("all sources (paper)", full),
        ("optimal source only", optimal_only),
    ):
        model = train_masked_model(
            dataset, (), seed=config.seed, training=config.training
        )
        flags, excesses = [], []
        for grid in test_grids:
            w, e = _evaluate_model_on_grid(
                model, grid, builder, 1.0, only_suboptimal_sources=True
            )
            flags.extend(w)
            excesses.extend(e)
        if not flags:
            raise ValueError("no suboptimal-source cases in the test grids")
        result.rows.append(
            AblationRow(
                name, float(np.mean(flags)), float(np.mean(excesses))
            )
        )
    return result


def run_noise_ablation(
    assets: AssetStore,
    config: AblationConfig = AblationConfig(),
    grids=None,
    noise_stds_c: Sequence[float] = (0.0, 0.3, 1.0),
    alphas: Sequence[float] = (0.5, 1.0, 2.0),
    rng_seed: int = 4242,
) -> AblationResult:
    """Measurement noise vs. label sharpness (the alpha trade-off).

    Sec. 4.2 states that alpha trades off "tolerating slightly higher
    temperatures and susceptibility to temperature measurement noise".
    This study injects Gaussian noise into the oracle's measured peak
    temperatures before label generation, for several alphas, and scores
    the resulting models on *clean* held-out grids.
    """
    import dataclasses as _dc

    from repro.il.traces import TraceGrid, TracePoint
    from repro.utils.rng import RandomSource as _RS

    train_grids, test_grids = grids or _collect_grids(assets, config)
    eval_builder = DatasetBuilder(assets.platform)
    result = AblationResult(study="measurement-noise x alpha ablation")

    def _noisy(grids_in, std, rng):
        if is_zero(std):
            return list(grids_in)
        noisy = []
        for grid in grids_in:
            clone = TraceGrid(scenario=grid.scenario, vf_grid=dict(grid.vf_grid))
            for point in grid.points.values():
                clone.add(
                    _dc.replace(
                        point,
                        peak_temp_c=point.peak_temp_c
                        + float(rng.normal(0.0, std)),
                    )
                )
            noisy.append(clone)
        return noisy

    for std in noise_stds_c:
        rng = _RS(rng_seed).child(f"noise-{std}")
        noisy_grids = _noisy(train_grids, std, rng)
        for alpha in alphas:
            builder = DatasetBuilder(
                assets.platform, LabelConfig(alpha=alpha)
            )
            dataset = builder.build(noisy_grids)
            model = train_masked_model(
                dataset, (), seed=config.seed, training=config.training
            )
            within, excess = _heldout_quality(model, test_grids, eval_builder)
            result.rows.append(
                AblationRow(f"noise={std:.1f}C alpha={alpha:g}", within, excess)
            )
    return result


@dataclass
class RLRewardRow:
    penalty: float
    epsilon: float
    mean_temp_c: float
    violations: int
    migrations: int


@dataclass
class RLRewardAblationResult:
    rows: List[RLRewardRow] = field(default_factory=list)

    def report(self) -> str:
        return ascii_table(
            ["violation penalty", "epsilon", "avg temp", "violations",
             "migrations"],
            [
                (f"{r.penalty:.0f}", f"{r.epsilon:.2f}",
                 f"{r.mean_temp_c:.1f} C", r.violations, r.migrations)
                for r in self.rows
            ],
        )


def run_rl_reward_ablation(
    assets: AssetStore,
    config: AblationConfig = AblationConfig(),
    penalties: Sequence[float] = (-50.0, -200.0, -800.0),
    epsilons: Sequence[float] = (0.1,),
) -> RLRewardAblationResult:
    """Sweep the RL reward's QoS-violation penalty (and epsilon).

    The paper "empirically tuned the negative reward of -200 ... to
    achieve a good trade-off between low temperature and low QoS
    violations" — the structural problem of folding an objective and a
    constraint into one scalar.  This sweep makes the trade-off visible:
    weak penalties sacrifice QoS for temperature; harsh penalties push the
    policy to hot-but-safe operating points.
    """
    from repro.rl.policy import RLConfig as _RLConfig
    from repro.rl.pretrain import pretrain_qtable
    from repro.rl.technique import TopRL

    platform = assets.platform
    workload = mixed_workload(
        platform,
        n_apps=config.workload_apps,
        arrival_rate_per_s=1.0 / 6.0,
        seed=config.seed,
        instruction_scale=config.instruction_scale,
    )
    result = RLRewardAblationResult()
    for penalty in penalties:
        for epsilon in epsilons:
            rl_config = _RLConfig(
                qos_violation_reward=penalty, epsilon=epsilon
            )
            table = pretrain_qtable(
                platform,
                seed=config.seed,
                episodes=1,
                instruction_scale=0.02,
                config=rl_config,
            )
            technique = TopRL(
                qtable=table,
                config=rl_config,
                rng=RandomSource(config.seed).child(
                    f"rl-reward-{penalty}-{epsilon}"
                ),
            )
            run = run_workload(platform, technique, workload, seed=config.seed)
            result.rows.append(
                RLRewardRow(
                    penalty=penalty,
                    epsilon=epsilon,
                    mean_temp_c=run.summary.mean_temp_c,
                    violations=run.summary.n_qos_violations,
                    migrations=run.summary.migrations,
                )
            )
    return result


def run_rl_variant_ablation(
    assets: AssetStore,
    config: AblationConfig = AblationConfig(),
) -> MigrationGranularityResult:
    """Plain Q-learning vs. Double Q-learning for the RL baseline.

    Double Q removes the maximization bias of tabular Q-learning; if the
    RL baseline's weakness were merely the learner, this variant would
    close the gap to TOP-IL.  The structural problems the paper names
    (online exploration, scalarized reward) remain, so it does not.
    """
    from repro.rl.double import DoubleQTable
    from repro.rl.policy import RLConfig as _RLConfig
    from repro.rl.state import N_STATES
    from repro.rl.technique import TopRL

    platform = assets.platform
    workload = mixed_workload(
        platform,
        n_apps=config.workload_apps,
        arrival_rate_per_s=1.0 / 6.0,
        seed=config.seed,
        instruction_scale=config.instruction_scale,
    )
    result = MigrationGranularityResult()
    pretrained = assets.qtables()[0]
    variants = [
        ("plain Q (paper)", pretrained.copy()),
    ]
    double = DoubleQTable(
        N_STATES, platform.n_cores,
        rng=RandomSource(config.seed).child("double-q"),
    )
    # Warm-start both halves from the pre-trained plain table so the
    # comparison isolates the update rule, not the training budget.
    double.table_a.values[:] = pretrained.values / 2.0
    double.table_b.values[:] = pretrained.values / 2.0
    variants.append(("double Q", double))
    for name, table in variants:
        technique = TopRL(
            qtable=table,
            config=_RLConfig(),
            rng=RandomSource(config.seed).child(f"rl-variant-{name}"),
        )
        run = run_workload(platform, technique, workload, seed=config.seed)
        result.rows.append(
            (
                name,
                run.summary.mean_temp_c,
                run.summary.n_qos_violations,
                run.summary.migrations,
            )
        )
    return result
