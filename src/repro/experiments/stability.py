"""Policy-stability comparison: IL vs RL (the paper's third contribution).

The paper claims design-time training until convergence gives TOP-IL a
*stable* policy, whereas TOP-RL's continual online exploration causes
abrupt mapping changes, spurious QoS violations, and temperature jumps.
This experiment quantifies stability directly:

* **migration rate** — executed migrations per simulated minute;
* **mapping entropy** — how spread-out each application's per-cluster
  residency is (0 = always the same cluster, 1 = 50/50 oscillation);
* **temperature jitter** — std-dev of the sensor's first difference;
* **instantaneous QoS dips** — 1 − mean(QoS-met time fraction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.experiments.assets import AssetStore
from repro.il.technique import TopIL
from repro.platform.hikey import BIG
from repro.rl.technique import TopRL
from repro.utils.rng import RandomSource
from repro.utils.tables import ascii_table
from repro.workloads.generator import mixed_workload
from repro.workloads.runner import run_workload


@dataclass
class StabilityConfig:
    n_apps: int = 10
    arrival_rate_per_s: float = 1.0 / 8.0
    repetitions: int = 2
    instruction_scale: float = 0.05
    seed: int = 61

    @classmethod
    def smoke(cls) -> "StabilityConfig":
        return cls(n_apps=6, repetitions=1, instruction_scale=0.03)

    @classmethod
    def paper(cls) -> "StabilityConfig":
        return cls(n_apps=20, repetitions=3, instruction_scale=0.3)


@dataclass
class StabilityRow:
    technique: str
    migrations_per_min: float
    mapping_entropy: float
    temp_jitter_c: float
    qos_dip_fraction: float


@dataclass
class StabilityResult:
    rows: List[StabilityRow] = field(default_factory=list)

    def get(self, technique: str) -> StabilityRow:
        for row in self.rows:
            if row.technique == technique:
                return row
        raise KeyError(technique)

    def report(self) -> str:
        return ascii_table(
            ["technique", "migrations/min", "mapping entropy",
             "temp jitter", "QoS dips"],
            [
                (
                    r.technique,
                    f"{r.migrations_per_min:.1f}",
                    f"{r.mapping_entropy:.3f}",
                    f"{r.temp_jitter_c:.3f} C",
                    f"{100 * r.qos_dip_fraction:.1f} %",
                )
                for r in self.rows
            ],
        )


def _mapping_entropy(run, platform) -> float:
    """Mean binary entropy of per-process cluster residency."""
    core_to_cluster = {c.core_id: c.cluster_name for c in platform.cores}
    entropies = []
    for pid, series in run.trace.process_cores.items():
        clusters = [core_to_cluster.get(c) for c in series if c >= 0]
        if len(clusters) < 2:
            continue
        p_big = sum(1 for c in clusters if c == BIG) / len(clusters)
        if p_big in (0.0, 1.0):
            entropies.append(0.0)
        else:
            entropies.append(
                -(p_big * np.log2(p_big) + (1 - p_big) * np.log2(1 - p_big))
            )
    return float(np.mean(entropies)) if entropies else 0.0


def _temp_jitter(run) -> float:
    temps = np.asarray(run.trace.sensor_temp_c)
    if len(temps) < 2:
        return 0.0
    return float(np.std(np.diff(temps)))


def run_stability(
    assets: AssetStore, config: StabilityConfig = StabilityConfig()
) -> StabilityResult:
    """Compare TOP-IL and TOP-RL on the stability metrics."""
    platform = assets.platform
    metrics = {name: [] for name in ("TOP-IL", "TOP-RL")}
    for rep in range(config.repetitions):
        workload = mixed_workload(
            platform,
            n_apps=config.n_apps,
            arrival_rate_per_s=config.arrival_rate_per_s,
            seed=config.seed + rep,
            instruction_scale=config.instruction_scale,
        )
        models = assets.models()
        qtables = assets.qtables()
        techniques = [
            TopIL(models[rep % len(models)]),
            TopRL(
                qtable=qtables[rep % len(qtables)].copy(),
                rng=RandomSource(config.seed + rep).child("stability-rl"),
            ),
        ]
        for technique in techniques:
            run = run_workload(
                platform, technique, workload, seed=config.seed + rep
            )
            minutes = max(1e-9, run.summary.duration_s / 60.0)
            dips = 1.0 - run.summary.mean_qos_met_fraction
            metrics[technique.name].append(
                (
                    run.summary.migrations / minutes,
                    _mapping_entropy(run, platform),
                    _temp_jitter(run),
                    dips,
                )
            )
    result = StabilityResult()
    for name, samples in metrics.items():
        arr = np.asarray(samples)
        result.rows.append(
            StabilityRow(
                technique=name,
                migrations_per_min=float(arr[:, 0].mean()),
                mapping_entropy=float(arr[:, 1].mean()),
                temp_jitter_c=float(arr[:, 2].mean()),
                qos_dip_fraction=float(arr[:, 3].mean()),
            )
        )
    return result
