"""Infrastructure-chaos sweep (extension beyond the paper).

:mod:`repro.experiments.resilience` injects faults into the *simulated
platform*; this experiment injects faults into the *infrastructure that
runs the simulation* — the artifact store, the checkpoint files, and the
worker processes themselves — and checks the recovery machinery end to
end.  The same tiny grid of cells runs twice:

1. **Baseline pass** — chaos and checkpointing both off.
2. **Chaos pass** — a deterministic :class:`~repro.chaos.ChaosPlan`
   (worker SIGKILLs, kill-after-checkpoint, torn checkpoint writes,
   transient write errors, ENOSPC) plus periodic checkpointing, fanned
   out over the supervised fork pool.

The headline invariant is **bit-identity**: every chaos-pass cell must
produce a :class:`~repro.metrics.summary.RunSummary` whose canonical
digest equals the baseline cell's, because chaos only touches the host
layer and recovery resumes from exact kernel snapshots.  The secondary
invariant is **recovery**: cells killed after their first checkpoint must
report ``resumed_from_s > 0`` — the sweep proves crashes were absorbed by
resume, not by silent recompute-from-scratch.

Per-cell kill kinds need the fork pool (a SIGKILL in the serial path
would take down the supervisor); when the pool is unavailable the sweep
automatically drops ``worker_kill``/``kill_after_checkpoint`` from the
plan and says so in the report.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import shutil
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.chaos import (
    CHAOS_DIR_ENV,
    CHAOS_ENV,
    CHAOS_SEED_ENV,
    ChaosPlan,
    reset_engine_cache,
)
from repro.experiments.assets import AssetStore
from repro.experiments.parallel import (
    FailedCell,
    default_workers,
    parallel_enabled,
    run_cells_report,
)
from repro.governors.techniques import GTSOndemand
from repro.metrics.summary import RunSummary
from repro.obs.manifest import canonical_json
from repro.obs.metrics import MetricsRegistry
from repro.sim.checkpoint import CHECKPOINT_DIR_ENV, CHECKPOINT_PERIOD_ENV
from repro.thermal import FAN_COOLING
from repro.utils.tables import ascii_table
from repro.workloads.generator import mixed_workload
from repro.workloads.runner import run_workload

#: Chaos kinds that SIGKILL the executing process: only safe on the fork
#: pool, where the supervisor survives and retries the cell.
_KILL_KINDS = ("worker_kill", "kill_after_checkpoint")


@dataclass
class ChaosConfig:
    """One chaos sweep: grid size, plan text, and checkpoint cadence."""

    #: Number of grid cells; each runs one seed of the tiny workload.
    n_cells: int = 3
    n_apps: int = 2
    arrival_rate_per_s: float = 1.0
    instruction_scale: float = 0.002
    seed: int = 7
    #: The injected plan (``ChaosPlan.parse`` syntax).  The default kills
    #: every cell's first attempt outright, kills the retry right after
    #: its first checkpoint, and tears/errors checkpoint-store writes —
    #: every recovery path fires on every cell.
    chaos_plan: str = (
        "worker_kill:1,kill_after_checkpoint:1,"
        "torn_write:0.5,store_write_error:0.3,enospc:0.2"
    )
    #: Engine seed.  Chosen so the *first* draw of each store-write
    #: stream does not trigger: every attempt runs in a fresh fork (its
    #: streams start at position 0), so the retry's first checkpoint
    #: always lands intact and the kill-after-checkpoint / resume path is
    #: exercised on every cell; later draws still tear and fail writes.
    chaos_seed: int = 5
    #: Simulated seconds between checkpoints (small: cells are tiny).
    checkpoint_period_s: float = 0.5
    cell_timeout_s: Optional[float] = 120.0
    #: Attempt budget: 1 (killed at start) + 1 (killed after checkpoint)
    #: + 1 (resumes and completes), plus one spare.
    max_retries: int = 3
    retry_backoff_s: float = 0.05

    def __post_init__(self) -> None:
        if self.n_cells < 1:
            raise ValueError("n_cells must be >= 1")
        if self.checkpoint_period_s <= 0.0:
            raise ValueError("checkpoint_period_s must be > 0")
        # Fail on an unparseable plan at config time, not mid-sweep.
        ChaosPlan.parse(self.chaos_plan, seed=self.chaos_seed)

    @classmethod
    def smoke(cls) -> "ChaosConfig":
        return cls(n_cells=2)

    @classmethod
    def paper(cls) -> "ChaosConfig":
        return cls(n_cells=6, n_apps=4, instruction_scale=0.01)


@dataclass(frozen=True)
class ChaosRow:
    """One cell's outcome in one pass (baseline or chaos)."""

    cell_seed: int
    mean_temp_c: float
    peak_temp_c: float
    qos_violations: int
    migrations: int
    #: SHA-256 over the canonical JSON of the full RunSummary — the
    #: bit-identity fingerprint compared across passes.
    summary_digest: str
    #: Simulated time this cell resumed from (0.0 = never crashed or
    #: recomputed from scratch).
    resumed_from_s: float


@dataclass
class ChaosResult:
    baseline: List[ChaosRow] = field(default_factory=list)
    chaos: List[ChaosRow] = field(default_factory=list)
    failed_cells: List[FailedCell] = field(default_factory=list)
    retries_total: int = 0
    #: The plan the chaos pass actually ran (kill kinds may be dropped).
    plan_text: str = ""
    #: True when the pool was unavailable and kill kinds were dropped.
    kill_kinds_skipped: bool = False

    def _by_seed(self, rows: List[ChaosRow]) -> Dict[int, ChaosRow]:
        return {row.cell_seed: row for row in rows}

    def bit_identical(self) -> bool:
        """Every completed chaos cell matches its baseline digest."""
        base = self._by_seed(self.baseline)
        return bool(self.chaos) and all(
            row.cell_seed in base
            and base[row.cell_seed].summary_digest == row.summary_digest
            for row in self.chaos
        )

    def recovered_cells(self) -> List[int]:
        """Cell seeds whose chaos run resumed from a checkpoint."""
        return [r.cell_seed for r in self.chaos if r.resumed_from_s > 0.0]

    def report(self) -> str:
        base = self._by_seed(self.baseline)
        rows = []
        for row in self.chaos:
            ref = base.get(row.cell_seed)
            identical = ref is not None and (
                ref.summary_digest == row.summary_digest
            )
            rows.append(
                (
                    row.cell_seed,
                    f"{row.mean_temp_c:.1f} C",
                    row.qos_violations,
                    row.migrations,
                    f"{row.resumed_from_s:.2f} s",
                    "yes" if identical else "NO",
                )
            )
        table = ascii_table(
            [
                "cell seed", "avg temp", "violations", "migrations",
                "resumed from", "== baseline",
            ],
            rows,
        )
        lines = [f"chaos plan: {self.plan_text or '(empty)'}", table]
        if self.kill_kinds_skipped:
            lines.append(
                "note: fork pool not used (serial path); kill kinds were "
                "dropped from the plan (no crash-recovery coverage this run)"
            )
        recovered = self.recovered_cells()
        lines.append(
            f"recovered cells: {len(recovered)}/{len(self.chaos)} "
            f"(retries: {self.retries_total})"
        )
        lines.append(
            "bit-identical to chaos-free baseline: "
            + ("yes" if self.bit_identical() else "NO")
        )
        for failure in self.failed_cells:
            lines.append(
                f"FAILED cell[{failure.index}] seed={failure.cell}: "
                f"{failure.reason} after {failure.attempts} attempt(s)"
            )
        return "\n".join(lines)


@contextmanager
def _install_env(values: Dict[str, Optional[str]]) -> Iterator[None]:
    """Set/unset env carriers for one pass, restoring on exit.

    Resets the per-process chaos engine cache on both edges so the pass
    (and whatever runs after it) resolves the env it actually sees.
    """
    saved = {key: os.environ.get(key) for key in values}
    for key, value in values.items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value
    reset_engine_cache()
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        reset_engine_cache()


def _summary_digest(summary: RunSummary) -> str:
    return hashlib.sha256(
        canonical_json(summary).encode("utf-8")
    ).hexdigest()


# Shared read-only state for the chaos workers (pool initializer).
_CHAOS_STATE: Dict[str, object] = {}


def _init_chaos_worker(assets: AssetStore, config: ChaosConfig) -> None:
    _CHAOS_STATE["assets"] = assets
    _CHAOS_STATE["config"] = config


def _run_chaos_cell(cell_seed: int) -> ChaosRow:
    """One tiny simulation -> fingerprinted row.

    Chaos and checkpointing arrive via the environment (inherited across
    the pool fork), so the *identical* worker code runs on both passes —
    any divergence between them is the infrastructure's fault, which is
    the point.
    """
    assets: AssetStore = _CHAOS_STATE["assets"]  # type: ignore[assignment]
    config: ChaosConfig = _CHAOS_STATE["config"]  # type: ignore[assignment]
    platform = assets.platform
    workload = mixed_workload(
        platform,
        n_apps=config.n_apps,
        arrival_rate_per_s=config.arrival_rate_per_s,
        seed=cell_seed,
        instruction_scale=config.instruction_scale,
    )
    run = run_workload(
        platform,
        GTSOndemand(),
        workload,
        cooling=FAN_COOLING,
        seed=cell_seed,
    )
    return ChaosRow(
        cell_seed=cell_seed,
        mean_temp_c=run.summary.mean_temp_c,
        peak_temp_c=run.summary.peak_temp_c,
        qos_violations=run.summary.n_qos_violations,
        migrations=run.summary.migrations,
        summary_digest=_summary_digest(run.summary),
        resumed_from_s=run.resumed_from_s,
    )


def _resolve_pool(
    parallel: Optional[bool], n_workers: Optional[int], n_cells: int
) -> Tuple[bool, Optional[int]]:
    """Whether the chaos pass forks, and with how many workers.

    Kill kinds are only safe under the supervised pool, and
    ``run_cells_report`` forks only when it resolves >= 2 workers — so
    the count is pinned to at least 2 here instead of trusting the
    CPU-count default, which is 1 on small CI boxes and would silently
    run SIGKILL kinds inline in the supervisor process.  An explicit
    ``n_workers=1`` is the serial opt-out: the sweep drops kill kinds.
    """
    pooled = parallel_enabled(parallel) and n_cells > 1
    if pooled:
        try:
            multiprocessing.get_context("fork")
        except ValueError:
            pooled = False
    if not pooled or (n_workers is not None and int(n_workers) <= 1):
        return False, n_workers
    requested = default_workers() if n_workers is None else int(n_workers)
    return True, min(max(2, requested), n_cells)


def _effective_plan(config: ChaosConfig, pooled: bool) -> str:
    """The plan text the chaos pass runs; kill kinds need the pool."""
    plan = ChaosPlan.parse(config.chaos_plan, seed=config.chaos_seed)
    if pooled:
        return config.chaos_plan
    kept = tuple(s for s in plan.specs if s.kind not in _KILL_KINDS)
    return ChaosPlan(specs=kept, seed=config.chaos_seed).describe()


def run_chaos(
    assets: AssetStore,
    config: ChaosConfig = ChaosConfig(),
    parallel: Optional[bool] = None,
    n_workers: Optional[int] = None,
    registry: Optional[MetricsRegistry] = None,
) -> ChaosResult:
    """Run the grid chaos-free, then under chaos; compare fingerprints.

    Neither pass uses the result cache: the bit-identity claim is only
    meaningful when both passes actually computed their cells.  The chaos
    pass gets a throwaway scratch tree (checkpoint store + kill markers)
    that is deleted before returning.
    """
    cells = [config.seed + i for i in range(config.n_cells)]
    pooled, chaos_workers = _resolve_pool(parallel, n_workers, len(cells))
    plan_text = _effective_plan(config, pooled)

    off: Dict[str, Optional[str]] = {
        CHAOS_ENV: None,
        CHAOS_SEED_ENV: None,
        CHAOS_DIR_ENV: None,
        CHECKPOINT_DIR_ENV: None,
        CHECKPOINT_PERIOD_ENV: None,
    }
    with _install_env(off):
        base_report = run_cells_report(
            cells,
            _run_chaos_cell,
            init=_init_chaos_worker,
            init_args=(assets, config),
            parallel=parallel,
            n_workers=n_workers,
            cell_timeout_s=config.cell_timeout_s,
            registry=registry,
        )

    scratch = tempfile.mkdtemp(prefix="repro-chaos-")
    on: Dict[str, Optional[str]] = {
        CHAOS_ENV: plan_text,
        CHAOS_SEED_ENV: str(config.chaos_seed),
        CHAOS_DIR_ENV: os.path.join(scratch, "markers"),
        CHECKPOINT_DIR_ENV: os.path.join(scratch, "checkpoints"),
        CHECKPOINT_PERIOD_ENV: str(config.checkpoint_period_s),
    }
    os.makedirs(on[CHAOS_DIR_ENV] or "", exist_ok=True)
    try:
        with _install_env(on):
            chaos_report = run_cells_report(
                cells,
                _run_chaos_cell,
                init=_init_chaos_worker,
                init_args=(assets, config),
                parallel=pooled,
                n_workers=chaos_workers,
                cell_timeout_s=config.cell_timeout_s,
                max_retries=config.max_retries,
                retry_backoff_s=config.retry_backoff_s,
                registry=registry,
            )
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    return ChaosResult(
        baseline=[r for r in base_report.results if r is not None],
        chaos=[r for r in chaos_report.results if r is not None],
        failed_cells=chaos_report.failed_cells,
        retries_total=chaos_report.retries_total,
        plan_text=plan_text,
        kill_kinds_skipped=not pooled,
    )
