"""Fig. 12 — run-time overhead of the manager vs. number of applications.

Two views are produced:

* **analytic** — per-invocation costs from the overhead model, scaled to
  ms of CPU time per second: the DVFS loop (20 invocations/s) grows
  linearly with the application count (counter reads), while the
  NPU-batched migration policy (2 invocations/s) stays flat.  A
  CPU-inference column shows what the policy would cost without the NPU.
* **measured** — an actual simulator run per application count, reading
  the overhead ledger the TOP-IL technique charges while managing.

The paper's reference points: worst case 0.54 ms (DVFS) and 4.3 ms
(migration) per invocation, total overhead <= 1.7 % of one core.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.experiments.assets import AssetStore
from repro.il.technique import TopIL
from repro.npu.latency import CPUInferenceLatency, NPUInferenceLatency
from repro.npu.overhead import ManagementOverheadModel
from repro.platform.hikey import LITTLE
from repro.thermal import FAN_COOLING
from repro.utils.tables import ascii_table
from repro.workloads.generator import Workload, WorkloadItem
from repro.workloads.runner import run_workload


@dataclass
class OverheadConfig:
    app_counts: Sequence[int] = (1, 2, 4, 6, 8)
    measure_app: str = "fdtd-2d"
    instruction_scale: float = 0.05
    seed: int = 5

    @classmethod
    def smoke(cls) -> "OverheadConfig":
        return cls(app_counts=(1, 4, 8), instruction_scale=0.01)

    @classmethod
    def paper(cls) -> "OverheadConfig":
        return cls(app_counts=(1, 2, 3, 4, 5, 6, 7, 8), instruction_scale=0.3)


@dataclass
class OverheadRow:
    n_apps: int
    dvfs_ms_per_s: float
    migration_npu_ms_per_s: float
    migration_cpu_ms_per_s: float
    measured_total_fraction: Optional[float] = None


@dataclass
class OverheadResult:
    rows: List[OverheadRow] = field(default_factory=list)
    dvfs_rate_per_s: float = 20.0
    migration_rate_per_s: float = 2.0

    def max_total_fraction(self) -> float:
        measured = [
            r.measured_total_fraction
            for r in self.rows
            if r.measured_total_fraction is not None
        ]
        if measured:
            return max(measured)
        return max(
            (r.dvfs_ms_per_s + r.migration_npu_ms_per_s) / 1000.0 for r in self.rows
        )

    def report(self) -> str:
        rows = [
            (
                r.n_apps,
                f"{r.dvfs_ms_per_s:.2f}",
                f"{r.migration_npu_ms_per_s:.2f}",
                f"{r.migration_cpu_ms_per_s:.2f}",
                (
                    f"{100 * r.measured_total_fraction:.2f} %"
                    if r.measured_total_fraction is not None
                    else "-"
                ),
            )
            for r in self.rows
        ]
        table = ascii_table(
            ["apps", "DVFS ms/s", "migration (NPU) ms/s",
             "migration (CPU) ms/s", "measured total"],
            rows,
        )
        return f"{table}\nmax total overhead {100 * self.max_total_fraction():.2f} %"


def run_overhead(
    assets: AssetStore,
    config: OverheadConfig = OverheadConfig(),
    measure: bool = True,
) -> OverheadResult:
    """Produce the Fig. 12 series, analytically and (optionally) measured."""
    platform = assets.platform
    model = assets.models()[0]
    npu = ManagementOverheadModel(inference=NPUInferenceLatency())
    cpu = ManagementOverheadModel(inference=CPUInferenceLatency())
    result = OverheadResult()
    for n_apps in config.app_counts:
        dvfs_ms = 1e3 * npu.dvfs_invocation_s(n_apps) * result.dvfs_rate_per_s
        mig_npu_ms = (
            1e3
            * npu.migration_invocation_s(n_apps, model)
            * result.migration_rate_per_s
        )
        mig_cpu_ms = (
            1e3
            * cpu.migration_invocation_s(n_apps, model)
            * result.migration_rate_per_s
        )
        measured: Optional[float] = None
        if measure:
            workload = Workload(
                name=f"overhead-{n_apps}",
                items=[
                    WorkloadItem(
                        config.measure_app,
                        # Modest target: keep all apps runnable concurrently.
                        qos_target_ips=1e8,
                        arrival_time_s=0.1 * i,
                    )
                    for i in range(n_apps)
                ],
                instruction_scale=config.instruction_scale,
            )
            run = run_workload(
                platform,
                TopIL(model, overhead_model=npu),
                workload,
                cooling=FAN_COOLING,
                seed=config.seed,
            )
            measured = run.summary.overhead_fraction
        result.rows.append(
            OverheadRow(
                n_apps=n_apps,
                dvfs_ms_per_s=dvfs_ms,
                migration_npu_ms_per_s=mig_npu_ms,
                migration_cpu_ms_per_s=mig_cpu_ms,
                measured_total_fraction=measured,
            )
        )
    return result
