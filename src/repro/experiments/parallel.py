"""Seed-stable, self-healing parallel fan-out for experiment grids.

Experiment drivers (``main_mixed``, ``ablation``, ``robustness``,
``resilience``) all share the same shape: a nested loop over a static grid
of *cells* (cooling x rate x repetition x technique, or period x period,
...), each cell running one independent simulation whose result feeds an
order-sensitive aggregation.

:func:`run_cells` executes that grid, optionally fanning the cells out
over a **supervised** ``fork`` worker pool, while guaranteeing
**bitwise-identical results to the serial loop**:

* every cell must be self-describing — it carries the seeds it needs, and
  the worker derives any randomness from them (see :func:`cell_rng`), never
  from process-global state, so a cell's result does not depend on which
  worker runs it, in which order, or on which attempt;
* results are returned in cell order regardless of completion order;
* heavyweight shared inputs (the :class:`~repro.experiments.assets.AssetStore`)
  are shipped once per worker through the pool initializer, not once per
  cell.

Unlike a bare ``Pool.map``, the supervisor survives misbehaving cells
instead of poisoning the whole grid:

* a worker that **crashes** (segfault, OOM-kill, ``SIGKILL``) is detected
  through its broken pipe; its cell is requeued with bounded retries and
  exponential backoff, and a fresh worker replaces the dead one;
* a cell that **hangs** past ``cell_timeout_s`` (wall clock) has its
  worker killed and is requeued the same way;
* a cell that raises a clean Python **exception** is *not* retried (the
  failure is deterministic — retrying reproduces it) and is reported;
* when retries are exhausted, :func:`run_cells` raises
  :class:`GridCellError`, while :func:`run_cells_report` returns a
  :class:`GridReport` carrying the salvaged results plus an explicit
  ``failed_cells`` list — partial-result salvage for long sweeps.

Parallelism is off when ``REPRO_PARALLEL=0`` (or ``parallel=False``), when
there is nothing to fan out, or when the platform lacks the ``fork`` start
method; the serial fallback calls the same initializer + worker
in-process, so both paths execute identical code (supervision — timeouts,
retries — requires the pool; serially an exception surfaces directly, or
becomes a ``failed_cells`` entry under :func:`run_cells_report`).

Grids can additionally be **incremental**: pass ``store=`` (a
:class:`~repro.store.ArtifactStore`) plus ``cell_key=`` and the supervisor
probes the store before scheduling — verified hits are returned without
running any worker, misses are computed and published back, so a warm
re-run recomputes only invalidated cells and a killed grid resumes where
it died.  Cell keys fold in every result ingredient (config, platform,
seed, fault environment), which is sound precisely because cells are
seed-stable.

Observability composes with the fan-out through files, not shared memory:
each worker's traced run writes its own per-cell manifest under
``<out_dir>/<experiment>/``, and after the grid completes the parent folds
those fragments into ``<out_dir>/<experiment>.manifest.json`` via
:func:`~repro.obs.manifest.merge_manifests` (pass ``experiment=`` to
:func:`run_cells` to opt in).  Because the merge sorts by cell label, the
grid manifest is identical whether the cells ran serially or forked.
Supervisor events (retries, failures, pool clamping) are counted into an
optional :class:`~repro.obs.metrics.MetricsRegistry` (``registry=``).
"""

from __future__ import annotations

import glob
import logging
import multiprocessing
import os
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.chaos.engine import pool_cell_hook
from repro.obs.config import Observability
from repro.obs.manifest import RunManifest, merge_manifests
from repro.obs.metrics import MetricsRegistry
from repro.sim.batch import (
    BatchSimulator,
    batch_compatibility,
    batch_ineligibility,
)
from repro.sim.kernel import Simulator
from repro.store import ArtifactHandle, ArtifactKey, ArtifactStore, CellResultHandle
from repro.utils.floatcmp import is_exactly
from repro.utils.rng import RandomSource

#: Environment switch: set to ``"0"`` to force serial execution everywhere.
PARALLEL_ENV_VAR = "REPRO_PARALLEL"

#: Default retry budget: a crashed/hung cell is re-attempted this many
#: times before it is reported as failed.
DEFAULT_MAX_RETRIES = 2

#: First retry backoff (wall seconds); doubles per subsequent attempt.
DEFAULT_RETRY_BACKOFF_S = 0.25

_LOG = logging.getLogger("repro.experiments.parallel")


def parallel_enabled(parallel: Optional[bool] = None) -> bool:
    """Whether fan-out is allowed: explicit argument wins, then the env var."""
    if parallel is not None:
        return bool(parallel)
    return os.environ.get(PARALLEL_ENV_VAR, "1") != "0"


def default_workers() -> int:
    """Default pool size: one worker per CPU."""
    return max(1, os.cpu_count() or 1)


def cell_rng(base_seed: int, *cell_key: Any) -> RandomSource:
    """Deterministic per-cell random source.

    Derives a child stream of ``RandomSource(base_seed)`` keyed by the
    cell coordinates, so the stream depends only on ``(base_seed,
    cell_key)`` — not on scheduling, worker identity, or how many other
    cells ran before this one.
    """
    key = "cell/" + "/".join(str(part) for part in cell_key)
    return RandomSource(base_seed).child(key)


def merge_cell_manifests(
    experiment: str, observability: Optional[Observability] = None
) -> Optional[str]:
    """Fold ``<out_dir>/<experiment>/*.manifest.json`` into one grid manifest.

    Returns the path of the merged ``<out_dir>/<experiment>.manifest.json``,
    or ``None`` when observability is disabled or no per-cell fragments
    exist yet.  Safe to call from the parent after any fan-out: workers
    communicate through the manifest files alone, so the merge does not
    depend on the pool's scheduling.
    """
    config = observability if observability is not None else Observability.from_env()
    if not config.enabled:
        return None
    cell_dir = os.path.join(config.out_dir, experiment)
    paths = sorted(glob.glob(os.path.join(cell_dir, "*.manifest.json")))
    if not paths:
        return None
    fragments = [RunManifest.load(path) for path in paths]
    merged = merge_manifests(fragments, experiment=experiment)
    return merged.write(os.path.join(config.out_dir, f"{experiment}.manifest.json"))


# ---------------------------------------------------------------------- results
@dataclass
class FailedCell:
    """One cell the supervisor could not complete."""

    index: int
    cell: Any
    attempts: int
    reason: str  # "error" (deterministic exception) | "crash" | "timeout"
    detail: str = ""


class GridCellError(RuntimeError):
    """Raised by :func:`run_cells` when cells remain failed after retries."""

    def __init__(self, failed: List[FailedCell]) -> None:
        self.failed = failed
        lines = [
            f"  cell[{f.index}] {f.reason} after {f.attempts} attempt(s): "
            f"{f.detail.splitlines()[-1] if f.detail else ''}"
            for f in failed
        ]
        super().__init__(
            f"{len(failed)} grid cell(s) failed:\n" + "\n".join(lines)
        )


@dataclass
class GridReport:
    """Salvage-mode outcome of one grid: results plus explicit failures.

    ``results[i]`` is ``None`` for every index listed in ``failed_cells``;
    completed cells keep their results, so a single dead cell no longer
    poisons a long sweep.
    """

    results: List[Any]
    failed_cells: List[FailedCell] = field(default_factory=list)
    retries_total: int = 0
    n_workers: int = 1
    used_pool: bool = False

    def ok(self) -> bool:
        return not self.failed_cells

    def raise_if_failed(self) -> None:
        if self.failed_cells:
            raise GridCellError(self.failed_cells)


@dataclass
class BatchCellPlan:
    """How the batched backend executes one grid cell.

    ``prepare`` builds the cell's fully-armed (but not yet advanced)
    :class:`~repro.sim.kernel.Simulator` — typically a thin wrapper around
    :func:`~repro.workloads.runner.prepare_run` with the cell's own
    technique, workload, and seed.  After the lockstep run completes the
    cell, ``finalize`` turns the simulator into the cell's result value —
    the same value ``worker(cell)`` would have produced, since the batched
    kernel is bit-identical to the scalar one.  ``timeout_s`` mirrors the
    scalar path's ``max_duration_s``; cells with different timeouts never
    share a batch.
    """

    prepare: Callable[[], Simulator]
    finalize: Callable[[Simulator], Any]
    timeout_s: float = 7200.0


def _describe_error(exc: BaseException) -> str:
    return "".join(
        traceback.format_exception_only(type(exc), exc)
    ).strip()


# ---------------------------------------------------------------------- worker side
def _worker_loop(
    conn: Any,
    worker: Callable[[Any], Any],
    init: Optional[Callable[..., None]],
    init_args: Tuple[Any, ...],
) -> None:
    """Long-lived worker: recv ``(index, cell, attempt)``, send a reply.

    Runs in the forked child.  A clean exception from ``worker`` becomes
    an ``("error", index, detail)`` reply; a crash (signal, interpreter
    death) simply breaks the pipe, which the supervisor detects.  The
    chaos seam (:func:`repro.chaos.pool_cell_hook`) runs at every cell
    attempt start — a no-op unless ``REPRO_CHAOS`` is set, in which case
    it may stall the cell or SIGKILL this very process (the crash path
    the supervisor's retry-with-resume exists for).
    """
    try:
        if init is not None:
            init(*init_args)
    except BaseException as exc:  # noqa: BLE001 - forwarded to the parent
        try:
            conn.send(("init_error", -1, _describe_error(exc)))
        except OSError:
            pass
        return
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        index, cell, attempt = message
        try:
            pool_cell_hook(index, attempt)
            payload = ("ok", index, worker(cell))
        except BaseException as exc:  # noqa: BLE001 - reported, not retried
            payload = ("error", index, _describe_error(exc))
        try:
            conn.send(payload)
        except (ValueError, OSError):
            # Unpicklable result or closed pipe: die; the supervisor sees
            # the broken pipe and handles it as a crash.
            return


# ---------------------------------------------------------------------- parent side
@dataclass
class _Task:
    index: int
    attempt: int = 1
    ready_wall_s: float = 0.0  # monotonic timestamp when dispatchable


class _Worker:
    """One supervised child process plus its duplex pipe."""

    def __init__(
        self,
        ctx: Any,
        worker: Callable[[Any], Any],
        init: Optional[Callable[..., None]],
        init_args: Tuple[Any, ...],
    ) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.conn = parent_conn
        self.process = ctx.Process(
            target=_worker_loop,
            args=(child_conn, worker, init, init_args),
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.task: Optional[_Task] = None
        self.deadline_wall_s: Optional[float] = None

    def kill(self) -> None:
        try:
            self.process.terminate()
            grace_s = 0.5
            self.process.join(grace_s)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(grace_s)
        finally:
            try:
                self.conn.close()
            except OSError:
                pass

    def shutdown(self) -> None:
        """Polite stop: sentinel, short join, then force-kill stragglers."""
        try:
            self.conn.send(None)
        except (ValueError, OSError):
            pass
        grace_s = 1.0
        self.process.join(grace_s)
        if self.process.is_alive():
            self.kill()
        else:
            try:
                self.conn.close()
            except OSError:
                pass


def _now_wall_s() -> float:
    # Wall time is pool orchestration metadata (timeouts, backoff); cell
    # *results* never depend on it.
    return time.monotonic()  # repro-lint: ignore[DET003]


def _pop_ready(queue: "Deque[_Task]", now_wall_s: float) -> Optional[_Task]:
    """First task whose backoff has elapsed (stable order otherwise)."""
    for _ in range(len(queue)):
        task = queue.popleft()
        if task.ready_wall_s <= now_wall_s:
            return task
        queue.append(task)
    return None


def _supervise(
    cells: List[Any],
    worker: Callable[[Any], Any],
    init: Optional[Callable[..., None]],
    init_args: Tuple[Any, ...],
    ctx: Any,
    n_workers: int,
    cell_timeout_s: Optional[float],
    max_retries: int,
    retry_backoff_s: float,
    registry: Optional[MetricsRegistry],
) -> Tuple[List[Any], List[FailedCell], int]:
    """Run the grid on a supervised fork pool; see module docstring."""
    n = len(cells)
    results: List[Any] = [None] * n
    done = [False] * n
    failed: Dict[int, FailedCell] = {}
    queue: Deque[_Task] = deque(_Task(index=i) for i in range(n))
    retries_total = 0

    def spawn() -> _Worker:
        return _Worker(ctx, worker, init, init_args)

    workers = [spawn() for _ in range(n_workers)]

    def record_failure(entry: _Worker, reason: str, detail: str) -> None:
        nonlocal retries_total
        task = entry.task
        entry.task = None
        entry.deadline_wall_s = None
        entry.kill()
        workers[workers.index(entry)] = spawn()
        if task is None:
            return
        if task.attempt <= max_retries:
            retries_total += 1
            if registry is not None:
                registry.counter("worker_retries_total", reason=reason).inc()
            backoff_s = retry_backoff_s * (2.0 ** (task.attempt - 1))
            _LOG.info(
                "cell %d %s (attempt %d); retrying in %.2f s",
                task.index, reason, task.attempt, backoff_s,
            )
            queue.append(
                _Task(
                    index=task.index,
                    attempt=task.attempt + 1,
                    ready_wall_s=_now_wall_s() + backoff_s,
                )
            )
        else:
            if registry is not None:
                registry.counter("worker_failures_total", reason=reason).inc()
            _LOG.warning(
                "cell %d %s; retries exhausted after %d attempt(s)",
                task.index, reason, task.attempt,
            )
            failed[task.index] = FailedCell(
                task.index, cells[task.index], task.attempt, reason, detail
            )

    try:
        while (sum(done) + len(failed)) < n:
            now_wall_s = _now_wall_s()
            # Dispatch ready tasks onto idle workers.
            for entry in workers:
                if entry.task is not None:
                    continue
                task = _pop_ready(queue, now_wall_s)
                if task is None:
                    break
                try:
                    entry.conn.send(
                        (task.index, cells[task.index], task.attempt)
                    )
                except (ValueError, OSError):
                    # Worker died while idle: requeue (no attempt burned,
                    # the cell never started) and replace the worker.
                    queue.appendleft(task)
                    entry.kill()
                    workers[workers.index(entry)] = spawn()
                    continue
                entry.task = task
                entry.deadline_wall_s = (
                    now_wall_s + cell_timeout_s
                    if cell_timeout_s is not None
                    else None
                )

            busy = [w for w in workers if w.task is not None]
            if not busy:
                if not queue:
                    break  # everything done or failed
                # All remaining tasks are backing off: sleep to the nearest.
                wake_wall_s = min(t.ready_wall_s for t in queue)
                pause_s = min(0.25, max(0.0, wake_wall_s - now_wall_s))
                time.sleep(pause_s)
                continue

            wait_s = 0.25
            deadlines_s = [
                w.deadline_wall_s for w in busy if w.deadline_wall_s is not None
            ]
            if deadlines_s:
                wait_s = min(wait_s, max(0.0, min(deadlines_s) - now_wall_s))
            by_conn = {w.conn: w for w in busy}
            ready = mp_connection.wait(list(by_conn), timeout=wait_s)

            for conn in ready:
                entry = by_conn[conn]
                try:
                    payload = entry.conn.recv()
                except (EOFError, OSError):
                    record_failure(entry, "crash", "worker process died")
                    continue
                tag, index, value = payload
                if tag == "ok":
                    results[index] = value
                    done[index] = True
                elif tag == "init_error":
                    raise RuntimeError(
                        f"worker initializer failed: {value}"
                    )
                else:  # "error": deterministic exception — do not retry.
                    task = entry.task
                    attempts = task.attempt if task is not None else 1
                    if registry is not None:
                        registry.counter(
                            "worker_failures_total", reason="error"
                        ).inc()
                    failed[index] = FailedCell(
                        index, cells[index], attempts, "error", str(value)
                    )
                entry.task = None
                entry.deadline_wall_s = None

            # Deadline sweep: kill and requeue hung cells.
            now_wall_s = _now_wall_s()
            for entry in list(workers):
                if (
                    entry.task is not None
                    and entry.deadline_wall_s is not None
                    and now_wall_s >= entry.deadline_wall_s
                ):
                    record_failure(
                        entry,
                        "timeout",
                        f"cell exceeded cell_timeout_s={cell_timeout_s}",
                    )
    finally:
        for entry in workers:
            entry.shutdown()

    return results, [failed[i] for i in sorted(failed)], retries_total


# ---------------------------------------------------------------------- entry points
def _publishing_worker(
    worker: Callable[[Any], Any],
    store: ArtifactStore,
    cell_key: Callable[[Any], Optional[ArtifactKey]],
    handle: ArtifactHandle,
) -> Callable[[Any], Any]:
    """Wrap ``worker`` so every completed cell is published to the store.

    The wrapper re-derives the cell's key worker-side (keys are pure
    functions of the cell, so parent and worker agree on the digest) and
    publishes *before* the result travels back over the pipe: if the grid
    is killed afterwards, a warm re-run finds the finished cells and
    resumes where the grid died.  Works on both execution paths — the
    fork pool inherits the closure, the serial path calls it directly.
    """

    def publish(cell: Any) -> Any:
        value = worker(cell)
        key = cell_key(cell)
        if key is not None:
            store.put(key, value, handle)
        return value

    return publish


def _count_fallback(registry: Optional[MetricsRegistry], reason: str) -> None:
    if registry is not None:
        registry.counter(
            "batch_fallback_cells_total", reason="-".join(reason.split())
        ).inc()


def _run_cells_batched(
    cells: List[Any],
    worker: Callable[[Any], Any],
    batch_plan: Callable[[Any], Optional[BatchCellPlan]],
    *,
    init: Optional[Callable[..., None]],
    init_args: Tuple[Any, ...],
    n_workers: Optional[int],
    parallel: Optional[bool],
    experiment: Optional[str],
    observability: Optional[Observability],
    cell_timeout_s: Optional[float],
    max_retries: int,
    retry_backoff_s: float,
    registry: Optional[MetricsRegistry],
    store: Optional[ArtifactStore],
    cell_key: Optional[Callable[[Any], Optional[ArtifactKey]]],
    cell_handle: Optional[ArtifactHandle],
) -> GridReport:
    """``backend="batched"`` execution; see :func:`run_cells_report`."""
    n = len(cells)
    results: List[Any] = [None] * n
    failed: List[FailedCell] = []
    handle = cell_handle if cell_handle is not None else CellResultHandle()
    use_store = store is not None and cell_key is not None

    # Store probe first: verified hits never build a simulator at all.
    pending: List[int] = []
    if use_store:
        assert store is not None and cell_key is not None
        for index, cell in enumerate(cells):
            key = cell_key(cell)
            found, value = (False, None)
            if key is not None:
                found, value = store.lookup(key, handle)
            if found:
                results[index] = value
            else:
                pending.append(index)
    else:
        pending = list(range(n))

    if pending and init is not None:
        # The planner usually closes over state the initializer stashes
        # (asset stores, platform singletons), so run it in-parent first —
        # exactly what the serial path does.
        init(*init_args)

    # Partition: plan + per-cell eligibility.  Cells without a plan or
    # with a configuration the lockstep kernel cannot replicate exactly
    # fall back to the scalar path below.
    eligible: List[Tuple[int, Simulator, BatchCellPlan]] = []
    fallback: List[int] = []
    for index in pending:
        plan = batch_plan(cells[index])
        if plan is None:
            _count_fallback(registry, "no plan")
            fallback.append(index)
            continue
        sim = plan.prepare()
        reason = batch_ineligibility(sim)
        if reason is not None:
            _count_fallback(registry, reason)
            fallback.append(index)
            continue
        eligible.append((index, sim, plan))

    # Greedy grouping into maximal mutually-compatible batches.  The
    # BatchSimulator constructor validates each cell against the group's
    # first, which is exactly the reference used here.
    groups: List[List[Tuple[int, Simulator, BatchCellPlan]]] = []
    for item in eligible:
        for group in groups:
            _, ref_sim, ref_plan = group[0]
            if is_exactly(item[2].timeout_s, ref_plan.timeout_s) and (
                batch_compatibility(ref_sim, item[1]) is None
            ):
                group.append(item)
                break
        else:
            groups.append([item])

    for group in groups:
        try:
            batch = BatchSimulator([sim for _, sim, _ in group])
            if registry is not None:
                registry.gauge("batch_cells").set(float(batch.n_cells))
            outcomes = batch.run(timeout_s=group[0][2].timeout_s)
            if registry is not None:
                registry.gauge("batch_fill_ratio").set(
                    batch.lockstep_fill_ratio
                )
        except Exception as exc:  # defensive: recompute on the scalar path
            _LOG.warning(
                "batched group of %d cell(s) failed (%s); "
                "falling back to the scalar kernel",
                len(group), _describe_error(exc),
            )
            for index, _, _ in group:
                _count_fallback(registry, "batch error")
                fallback.append(index)
            continue
        for (index, sim, plan), outcome in zip(group, outcomes):
            if outcome is not None:
                # Mirror the scalar contract: a timeout raises out of the
                # worker, a deterministic failure that is not retried.
                if registry is not None:
                    registry.counter(
                        "worker_failures_total", reason="error"
                    ).inc()
                failed.append(
                    FailedCell(
                        index, cells[index], 1, "error",
                        _describe_error(outcome),
                    )
                )
                continue
            try:
                value = plan.finalize(sim)
            except Exception as exc:
                if registry is not None:
                    registry.counter(
                        "worker_failures_total", reason="error"
                    ).inc()
                failed.append(
                    FailedCell(
                        index, cells[index], 1, "error", _describe_error(exc)
                    )
                )
                continue
            if use_store:
                assert store is not None and cell_key is not None
                key = cell_key(cells[index])
                if key is not None:
                    store.put(key, value, handle)
            results[index] = value

    retries_total = 0
    n_workers_used = 1
    used_pool = False
    if fallback:
        fallback.sort()
        sub_worker = worker
        if use_store:
            assert store is not None and cell_key is not None
            sub_worker = _publishing_worker(worker, store, cell_key, handle)
        sub = run_cells_report(
            [cells[i] for i in fallback],
            sub_worker,
            init=init,
            init_args=init_args,
            n_workers=n_workers,
            parallel=parallel,
            observability=observability,
            cell_timeout_s=cell_timeout_s,
            max_retries=max_retries,
            retry_backoff_s=retry_backoff_s,
            registry=registry,
        )
        for sub_index, index in enumerate(fallback):
            results[index] = sub.results[sub_index]
        failed.extend(
            FailedCell(
                index=fallback[f.index],
                cell=f.cell,
                attempts=f.attempts,
                reason=f.reason,
                detail=f.detail,
            )
            for f in sub.failed_cells
        )
        retries_total = sub.retries_total
        n_workers_used = sub.n_workers
        used_pool = sub.used_pool

    if experiment is not None:
        merge_cell_manifests(experiment, observability)
    failed.sort(key=lambda f: f.index)
    return GridReport(
        results=results,
        failed_cells=failed,
        retries_total=retries_total,
        n_workers=n_workers_used,
        used_pool=used_pool,
    )


def run_cells_report(
    cells: Sequence[Any],
    worker: Callable[[Any], Any],
    *,
    init: Optional[Callable[..., None]] = None,
    init_args: Tuple[Any, ...] = (),
    n_workers: Optional[int] = None,
    parallel: Optional[bool] = None,
    experiment: Optional[str] = None,
    observability: Optional[Observability] = None,
    cell_timeout_s: Optional[float] = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
    registry: Optional[MetricsRegistry] = None,
    store: Optional[ArtifactStore] = None,
    cell_key: Optional[Callable[[Any], Optional[ArtifactKey]]] = None,
    cell_handle: Optional[ArtifactHandle] = None,
    backend: str = "auto",
    batch_plan: Optional[Callable[[Any], Optional[BatchCellPlan]]] = None,
) -> GridReport:
    """Run the grid with partial-result salvage; never raises for cells.

    Same contract as :func:`run_cells` (identical worker code on both
    paths, results in cell order) but failures are *reported*, not
    raised: the returned :class:`GridReport` carries completed results,
    the ``failed_cells`` list, and the retry count.  Crashed or hung
    cells (pool path) are retried up to ``max_retries`` times with
    exponential backoff starting at ``retry_backoff_s``; cells that raise
    ordinary exceptions are recorded without retry on both paths.

    ``cell_timeout_s`` (wall-clock, pool path only — a hung cell cannot
    be interrupted in-process) bounds each attempt.  ``registry`` counts
    supervisor events (``worker_retries_total``, ``worker_failures_total``,
    ``worker_pool_clamped_total``).

    With ``store`` + ``cell_key`` the grid becomes **incremental**: before
    any scheduling, every cell's key is probed against the artifact store
    and verified hits are filled in directly (counted in
    ``store_hits_total`` / ``store_misses_total`` when the store carries a
    registry); only misses are scheduled, and each completed cell is
    published back so an interrupted grid resumes where it died.  Cells
    are seed-stable by contract, so a cached result is bit-identical to a
    recomputed one.  ``cell_key`` may return ``None`` to opt a cell out;
    ``cell_handle`` defaults to :class:`~repro.store.CellResultHandle`.
    Note cached cells run no worker code, so they write no per-cell
    manifests and emit no run traces — see ``docs/caching.md``.

    ``backend`` selects the execution engine: ``"auto"`` (default) is the
    serial loop or the supervised fork pool as decided by ``parallel``;
    ``"batched"`` advances eligible cells in lockstep on one in-process
    :class:`~repro.sim.batch.BatchSimulator` (bit-identical to serial)
    and requires ``batch_plan`` — a callable mapping each cell to a
    :class:`BatchCellPlan` (or ``None`` to opt the cell out).  Cells the
    lockstep kernel cannot replicate (fault plans, observability, custom
    controllers — see :func:`~repro.sim.batch.batch_ineligibility`) fall
    back to the scalar path automatically, counted in
    ``batch_fallback_cells_total``.
    """
    if backend not in ("auto", "batched"):
        raise ValueError(f"unknown backend {backend!r}")
    if backend == "batched" and batch_plan is None:
        raise ValueError('backend="batched" requires batch_plan')
    cells = list(cells)
    if not cells:
        return GridReport(results=[])
    if backend == "batched":
        assert batch_plan is not None
        return _run_cells_batched(
            cells,
            worker,
            batch_plan,
            init=init,
            init_args=init_args,
            n_workers=n_workers,
            parallel=parallel,
            experiment=experiment,
            observability=observability,
            cell_timeout_s=cell_timeout_s,
            max_retries=max_retries,
            retry_backoff_s=retry_backoff_s,
            registry=registry,
            store=store,
            cell_key=cell_key,
            cell_handle=cell_handle,
        )

    if store is not None and cell_key is not None:
        handle = cell_handle if cell_handle is not None else CellResultHandle()
        results: List[Any] = [None] * len(cells)
        pending: List[int] = []
        for index, cell in enumerate(cells):
            key = cell_key(cell)
            found, value = (False, None)
            if key is not None:
                found, value = store.lookup(key, handle)
            if found:
                results[index] = value
            else:
                pending.append(index)
        if not pending:
            if experiment is not None:
                merge_cell_manifests(experiment, observability)
            return GridReport(results=results)
        sub = run_cells_report(
            [cells[i] for i in pending],
            _publishing_worker(worker, store, cell_key, handle),
            init=init,
            init_args=init_args,
            n_workers=n_workers,
            parallel=parallel,
            experiment=experiment,
            observability=observability,
            cell_timeout_s=cell_timeout_s,
            max_retries=max_retries,
            retry_backoff_s=retry_backoff_s,
            registry=registry,
        )
        for sub_index, index in enumerate(pending):
            results[index] = sub.results[sub_index]
        failed = [
            FailedCell(
                index=pending[f.index],
                cell=f.cell,
                attempts=f.attempts,
                reason=f.reason,
                detail=f.detail,
            )
            for f in sub.failed_cells
        ]
        return GridReport(
            results=results,
            failed_cells=failed,
            retries_total=sub.retries_total,
            n_workers=sub.n_workers,
            used_pool=sub.used_pool,
        )
    requested = default_workers() if n_workers is None else int(n_workers)
    effective = max(1, min(requested, len(cells)))
    if effective < requested:
        # Over-subscription clamp: spawning more forks than cells would
        # only create idle workers that still pay fork + teardown.
        _LOG.info(
            "clamping worker pool: %d requested, %d cell(s) -> %d worker(s)",
            requested, len(cells), effective,
        )
        if registry is not None:
            registry.counter("worker_pool_clamped_total").inc()
    use_pool = parallel_enabled(parallel) and effective > 1 and len(cells) > 1
    ctx = None
    if use_pool:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:
            use_pool = False

    if not use_pool:
        if init is not None:
            init(*init_args)
        results: List[Any] = [None] * len(cells)
        failed: List[FailedCell] = []
        for index, cell in enumerate(cells):
            try:
                results[index] = worker(cell)
            except Exception as exc:  # deterministic: no retry serially
                if registry is not None:
                    registry.counter(
                        "worker_failures_total", reason="error"
                    ).inc()
                failed.append(
                    FailedCell(index, cell, 1, "error", _describe_error(exc))
                )
        report = GridReport(
            results=results, failed_cells=failed, n_workers=1, used_pool=False
        )
    else:
        results, failed, retries_total = _supervise(
            cells,
            worker,
            init,
            init_args,
            ctx,
            effective,
            cell_timeout_s,
            max_retries,
            retry_backoff_s,
            registry,
        )
        report = GridReport(
            results=results,
            failed_cells=failed,
            retries_total=retries_total,
            n_workers=effective,
            used_pool=True,
        )

    if experiment is not None:
        merge_cell_manifests(experiment, observability)
    return report


def run_cells(
    cells: Sequence[Any],
    worker: Callable[[Any], Any],
    *,
    init: Optional[Callable[..., None]] = None,
    init_args: Tuple[Any, ...] = (),
    n_workers: Optional[int] = None,
    parallel: Optional[bool] = None,
    experiment: Optional[str] = None,
    observability: Optional[Observability] = None,
    cell_timeout_s: Optional[float] = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
    registry: Optional[MetricsRegistry] = None,
    store: Optional[ArtifactStore] = None,
    cell_key: Optional[Callable[[Any], Optional[ArtifactKey]]] = None,
    cell_handle: Optional[ArtifactHandle] = None,
    backend: str = "auto",
    batch_plan: Optional[Callable[[Any], Optional[BatchCellPlan]]] = None,
) -> List[Any]:
    """Run ``worker(cell)`` for every cell; results in cell order.

    ``worker`` (and ``init``) must be module-level functions so the
    forked children can resolve them.  ``init(*init_args)`` runs once per
    worker process (and once in-process on the serial path) — use it to
    stash shared read-only state in a module-level variable.

    ``n_workers=None`` uses :func:`default_workers`; the pool is clamped
    to the cell count (see ``worker_pool_clamped_total``).  Falls back to
    serial when parallelism is disabled, when there are fewer than two
    cells, or when the ``fork`` start method is unavailable.

    On the pool path, crashed or hung workers (``cell_timeout_s``) are
    respawned and their cells retried with bounded exponential backoff;
    this call raises :class:`GridCellError` only when a cell stays failed
    after ``max_retries`` retries (or raised a deterministic exception).
    On the serial path a worker exception propagates unchanged.  Use
    :func:`run_cells_report` to salvage partial results instead of
    raising.

    When ``experiment`` is given and observability is enabled (explicitly
    via ``observability=`` or through ``REPRO_TRACE``), the parent merges
    the per-cell manifests the workers wrote under
    ``<out_dir>/<experiment>/`` into ``<out_dir>/<experiment>.manifest.json``
    after all cells complete (see :func:`merge_cell_manifests`).
    """
    cells = list(cells)
    requested = default_workers() if n_workers is None else int(n_workers)
    effective = max(1, min(requested, len(cells) or 1))
    use_pool = parallel_enabled(parallel) and effective > 1 and len(cells) > 1
    use_store = store is not None and cell_key is not None
    if not use_pool and not use_store and backend != "batched":
        # Preserve the exact legacy serial contract: exceptions propagate.
        if effective < requested and registry is not None:
            registry.counter("worker_pool_clamped_total").inc()
        if init is not None:
            init(*init_args)
        results = [worker(cell) for cell in cells]
        if experiment is not None:
            merge_cell_manifests(experiment, observability)
        return results
    report = run_cells_report(
        cells,
        worker,
        init=init,
        init_args=init_args,
        n_workers=n_workers,
        parallel=parallel,
        experiment=experiment,
        observability=observability,
        cell_timeout_s=cell_timeout_s,
        max_retries=max_retries,
        retry_backoff_s=retry_backoff_s,
        registry=registry,
        store=store,
        cell_key=cell_key,
        cell_handle=cell_handle,
        backend=backend,
        batch_plan=batch_plan,
    )
    report.raise_if_failed()
    return report.results
