"""Seed-stable parallel fan-out for experiment grids.

Experiment drivers (``main_mixed``, ``ablation``, ``robustness``) all share
the same shape: a nested loop over a static grid of *cells* (cooling x rate
x repetition x technique, or period x period, ...), each cell running one
independent simulation whose result feeds an order-sensitive aggregation.

:func:`run_cells` executes that grid, optionally fanning the cells out over
a ``fork`` process pool, while guaranteeing **bitwise-identical results to
the serial loop**:

* every cell must be self-describing — it carries the seeds it needs, and
  the worker derives any randomness from them (see :func:`cell_rng`), never
  from process-global state, so a cell's result does not depend on which
  worker runs it or in which order;
* results are returned in cell order regardless of completion order;
* heavyweight shared inputs (the :class:`~repro.experiments.assets.AssetStore`)
  are shipped once per worker through the pool initializer, not once per
  cell.

Parallelism is off when ``REPRO_PARALLEL=0`` (or ``parallel=False``), when
there is nothing to fan out, or when the platform lacks the ``fork`` start
method; the serial fallback calls the same initializer + worker in-process,
so both paths execute identical code.

Observability composes with the fan-out through files, not shared memory:
each worker's traced run writes its own per-cell manifest under
``<out_dir>/<experiment>/``, and after the grid completes the parent folds
those fragments into ``<out_dir>/<experiment>.manifest.json`` via
:func:`~repro.obs.manifest.merge_manifests` (pass ``experiment=`` to
:func:`run_cells` to opt in).  Because the merge sorts by cell label, the
grid manifest is identical whether the cells ran serially or forked.
"""

from __future__ import annotations

import glob
import multiprocessing
import os
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.obs.config import Observability
from repro.obs.manifest import RunManifest, merge_manifests
from repro.utils.rng import RandomSource

#: Environment switch: set to ``"0"`` to force serial execution everywhere.
PARALLEL_ENV_VAR = "REPRO_PARALLEL"


def parallel_enabled(parallel: Optional[bool] = None) -> bool:
    """Whether fan-out is allowed: explicit argument wins, then the env var."""
    if parallel is not None:
        return bool(parallel)
    return os.environ.get(PARALLEL_ENV_VAR, "1") != "0"


def default_workers() -> int:
    """Default pool size: one worker per CPU."""
    return max(1, os.cpu_count() or 1)


def cell_rng(base_seed: int, *cell_key: Any) -> RandomSource:
    """Deterministic per-cell random source.

    Derives a child stream of ``RandomSource(base_seed)`` keyed by the
    cell coordinates, so the stream depends only on ``(base_seed,
    cell_key)`` — not on scheduling, worker identity, or how many other
    cells ran before this one.
    """
    key = "cell/" + "/".join(str(part) for part in cell_key)
    return RandomSource(base_seed).child(key)


def merge_cell_manifests(
    experiment: str, observability: Optional[Observability] = None
) -> Optional[str]:
    """Fold ``<out_dir>/<experiment>/*.manifest.json`` into one grid manifest.

    Returns the path of the merged ``<out_dir>/<experiment>.manifest.json``,
    or ``None`` when observability is disabled or no per-cell fragments
    exist yet.  Safe to call from the parent after any fan-out: workers
    communicate through the manifest files alone, so the merge does not
    depend on the pool's scheduling.
    """
    config = observability if observability is not None else Observability.from_env()
    if not config.enabled:
        return None
    cell_dir = os.path.join(config.out_dir, experiment)
    paths = sorted(glob.glob(os.path.join(cell_dir, "*.manifest.json")))
    if not paths:
        return None
    fragments = [RunManifest.load(path) for path in paths]
    merged = merge_manifests(fragments, experiment=experiment)
    return merged.write(os.path.join(config.out_dir, f"{experiment}.manifest.json"))


def run_cells(
    cells: Sequence[Any],
    worker: Callable[[Any], Any],
    *,
    init: Optional[Callable[..., None]] = None,
    init_args: Tuple[Any, ...] = (),
    n_workers: Optional[int] = None,
    parallel: Optional[bool] = None,
    experiment: Optional[str] = None,
    observability: Optional[Observability] = None,
) -> List[Any]:
    """Run ``worker(cell)`` for every cell; results in cell order.

    ``worker`` (and ``init``) must be module-level functions so they can be
    pickled by the pool.  ``init(*init_args)`` runs once per worker process
    (and once in-process on the serial path) — use it to stash shared
    read-only state in a module-level variable.

    ``n_workers=None`` uses :func:`default_workers`; the pool never has
    more workers than cells.  Falls back to serial when parallelism is
    disabled, when there are fewer than two cells, or when the ``fork``
    start method is unavailable.

    When ``experiment`` is given and observability is enabled (explicitly
    via ``observability=`` or through ``REPRO_TRACE``), the parent merges
    the per-cell manifests the workers wrote under
    ``<out_dir>/<experiment>/`` into ``<out_dir>/<experiment>.manifest.json``
    after all cells complete (see :func:`merge_cell_manifests`).
    """
    cells = list(cells)
    workers = default_workers() if n_workers is None else int(n_workers)
    use_pool = parallel_enabled(parallel) and workers > 1 and len(cells) > 1
    ctx = None
    if use_pool:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:
            use_pool = False

    if not use_pool:
        if init is not None:
            init(*init_args)
        results = [worker(cell) for cell in cells]
    else:
        with ctx.Pool(
            processes=min(workers, len(cells)),
            initializer=init,
            initargs=init_args,
        ) as pool:
            # chunksize=1: cells are coarse (whole simulations), so dynamic
            # dispatch beats pre-chunking when their durations differ.
            results = pool.map(worker, cells, chunksize=1)

    if experiment is not None:
        merge_cell_manifests(experiment, observability)
    return results
