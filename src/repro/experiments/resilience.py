"""Fault-rate resilience sweep (extension beyond the paper).

The paper evaluates TOP-IL on healthy hardware.  This experiment asks how
*gracefully* the manager degrades when the platform misbehaves: the same
mixed workload runs under TOP-IL at increasing fault rates (sensor
dropout / stuck-at / spike, NPU failure / timeout, controller-deadline
overruns, all driven by one deterministic :class:`~repro.faults.FaultPlan`
per cell), and the report shows the degradation curve — temperature, QoS
violations, and migration count versus fault rate — alongside how often
each graceful-degradation path fired (CPU inference fallback, DVFS-only
safe mode, DTM fail-safe throttle, EMA hold-through).

The rate-0 row doubles as a built-in control: it attaches the full fault
layer with a zero plan, which must reproduce the fault-free baseline
bit-for-bit (also asserted by the property tests).

Cells fan out over the **supervised** pool
(:func:`repro.experiments.parallel.run_cells_report`): a crashed or hung
cell is retried with backoff, and whatever still fails lands in
``failed_cells`` instead of poisoning the sweep — the resilience
experiment is itself resilient.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.assets import AssetStore
from repro.experiments.parallel import FailedCell, run_cells_report
from repro.faults import FaultPlan, FaultSpec
from repro.il.technique import TopIL
from repro.obs.metrics import MetricsRegistry
from repro.sim.kernel import SimulationTimeout
from repro.store import ArtifactKey, cell_artifact_key
from repro.thermal import FAN_COOLING
from repro.utils.floatcmp import is_zero
from repro.utils.tables import ascii_table
from repro.workloads.generator import mixed_workload
from repro.workloads.runner import run_workload

#: Relative weights of the fault kinds inside one sweep plan: ``rate`` is
#: the sensor-dropout / NPU-failure probability per opportunity; the other
#: kinds scale from it so a single knob drives the whole sweep.
_KIND_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("sensor_dropout", 1.0),
    ("sensor_stuck", 0.25),
    ("sensor_spike", 0.5),
    ("npu_failure", 1.0),
    ("npu_timeout", 0.5),
    # Deadline overruns are over-weighted: safe mode requires *consecutive*
    # misses, so a modest base rate would almost never reach it in a short
    # sweep cell, leaving the safe-mode path untested.
    ("deadline_overrun", 5.0),
)


def fault_plan_for_rate(rate: float, seed: int = 0) -> FaultPlan:
    """The sweep's composite plan at one base ``rate`` (0 -> zero plan).

    Every kind is present even at rate 0, so each injector stream draws
    at the same opportunities across the whole sweep — rows differ only
    in trigger probability, never in draw pattern.
    """
    specs = tuple(
        FaultSpec(kind=kind, rate=min(1.0, rate * weight))
        for kind, weight in _KIND_WEIGHTS
    )
    return FaultPlan(specs=specs, seed=seed)


@dataclass
class ResilienceConfig:
    #: Base per-opportunity trigger rates, one sweep cell per entry.
    fault_rates: Sequence[float] = (0.0, 0.02, 0.05, 0.1)
    n_apps: int = 6
    arrival_rate_per_s: float = 1.0 / 6.0
    instruction_scale: float = 0.02
    seed: int = 11
    fault_seed: int = 1
    #: Wall-clock bound per cell on the pool path (None = unbounded).
    cell_timeout_s: Optional[float] = 600.0
    max_retries: int = 2

    @classmethod
    def smoke(cls) -> "ResilienceConfig":
        return cls(fault_rates=(0.0, 0.1))

    @classmethod
    def paper(cls) -> "ResilienceConfig":
        return cls(
            fault_rates=(0.0, 0.01, 0.02, 0.05, 0.1, 0.2),
            n_apps=10,
            instruction_scale=0.1,
        )


@dataclass(frozen=True)
class ResilienceRow:
    """Degradation-curve point: one run at one fault rate."""

    rate: float
    mean_temp_c: float
    peak_temp_c: float
    qos_violations: int
    migrations: int
    #: Flat fault-layer counter snapshot (see FaultRuntime.counters).
    counters: Dict[str, float] = field(default_factory=dict)

    def paths_exercised(self) -> List[str]:
        """Degradation paths that actually fired in this run."""
        paths = []
        if self.counters.get("cpu_fallback_invocations", 0.0) > 0:
            paths.append("cpu_fallback")
        if self.counters.get("safe_mode_time_s", 0.0) > 0:
            paths.append("safe_mode")
        if self.counters.get("event.dtm.failsafe", 0.0) > 0:
            paths.append("dtm_failsafe")
        if self.counters.get("event.qos_dvfs.hold", 0.0) > 0:
            paths.append("dvfs_hold")
        return paths


@dataclass
class ResilienceResult:
    rows: List[ResilienceRow] = field(default_factory=list)
    failed_cells: List[FailedCell] = field(default_factory=list)
    retries_total: int = 0

    def report(self) -> str:
        table = ascii_table(
            [
                "fault rate", "avg temp", "peak temp", "violations",
                "migrations", "cpu fallbacks", "safe mode", "held reads",
            ],
            [
                (
                    f"{row.rate:.2f}",
                    f"{row.mean_temp_c:.1f} C",
                    f"{row.peak_temp_c:.1f} C",
                    row.qos_violations,
                    row.migrations,
                    int(row.counters.get("cpu_fallback_invocations", 0.0)),
                    f"{row.counters.get('safe_mode_time_s', 0.0):.1f} s",
                    int(row.counters.get("sensor.held_reads", 0.0)),
                )
                for row in self.rows
            ],
        )
        lines = [table]
        for row in self.rows:
            paths = ", ".join(row.paths_exercised()) or "none"
            lines.append(f"rate {row.rate:.2f}: degradation paths: {paths}")
        if self.failed_cells:
            for failure in self.failed_cells:
                lines.append(
                    f"FAILED cell[{failure.index}] rate={failure.cell}: "
                    f"{failure.reason} after {failure.attempts} attempt(s)"
                )
        else:
            lines.append(f"failed cells: none (retries: {self.retries_total})")
        return "\n".join(lines)

    def baseline_row(self) -> Optional[ResilienceRow]:
        for row in self.rows:
            if is_zero(row.rate):
                return row
        return None

    def all_paths_exercised(self) -> bool:
        """Whether the sweep hit every degradation path at least once."""
        seen = set()
        for row in self.rows:
            seen.update(row.paths_exercised())
        return {"cpu_fallback", "safe_mode", "dtm_failsafe"} <= seen


# Shared read-only state for the resilience workers (pool initializer).
_RESILIENCE_STATE: Dict[str, object] = {}


def _init_resilience_worker(assets: AssetStore, config: ResilienceConfig) -> None:
    _RESILIENCE_STATE["assets"] = assets
    _RESILIENCE_STATE["config"] = config


def _run_resilience_cell(rate: float) -> ResilienceRow:
    """One fault-rate simulation -> degradation-curve row."""
    assets: AssetStore = _RESILIENCE_STATE["assets"]  # type: ignore[assignment]
    config: ResilienceConfig = _RESILIENCE_STATE["config"]  # type: ignore[assignment]
    platform = assets.platform
    workload = mixed_workload(
        platform,
        n_apps=config.n_apps,
        arrival_rate_per_s=config.arrival_rate_per_s,
        seed=config.seed,
        instruction_scale=config.instruction_scale,
    )
    plan = fault_plan_for_rate(rate, seed=config.fault_seed)
    try:
        run = run_workload(
            platform,
            TopIL(assets.models()[0]),
            workload,
            cooling=FAN_COOLING,
            seed=config.seed,
            fault_plan=plan,
        )
    except SimulationTimeout as exc:
        # A pathological fault rate can stall progress; surface the stuck
        # cell explicitly instead of hanging the sweep (the supervisor
        # reports it in failed_cells).
        raise RuntimeError(
            f"resilience cell rate={rate} timed out: {exc}"
        ) from exc
    sim = run.sim
    assert sim.faults is not None
    return ResilienceRow(
        rate=rate,
        mean_temp_c=run.summary.mean_temp_c,
        peak_temp_c=run.summary.peak_temp_c,
        qos_violations=run.summary.n_qos_violations,
        migrations=run.summary.migrations,
        counters=sim.faults.counters(sim.now_s),
    )


def run_resilience(
    assets: AssetStore,
    config: ResilienceConfig = ResilienceConfig(),
    parallel: Optional[bool] = None,
    n_workers: Optional[int] = None,
    registry: Optional[MetricsRegistry] = None,
) -> ResilienceResult:
    """Sweep fault rates under TOP-IL; salvage whatever completes.

    Each rate is one independent cell (same workload, same run seed, same
    fault seed — only trigger probabilities differ), fanned out over the
    supervised pool with per-cell timeout and bounded retries.  Failures
    are reported in ``ResilienceResult.failed_cells``, never raised.
    """
    def cell_key(rate: float) -> ArtifactKey:
        # Orchestration knobs (cell_timeout_s, max_retries) stay out of the
        # key: they bound how the cell runs, never what it computes.
        return cell_artifact_key(
            "resilience",
            rate,
            config={
                "n_apps": config.n_apps,
                "arrival_rate_per_s": config.arrival_rate_per_s,
                "instruction_scale": config.instruction_scale,
                "fault_seed": config.fault_seed,
            },
            assets_config=assets.config.signature(),
            platform=assets.platform,
            seed=config.seed,
        )

    report = run_cells_report(
        list(config.fault_rates),
        _run_resilience_cell,
        init=_init_resilience_worker,
        init_args=(assets, config),
        parallel=parallel,
        n_workers=n_workers,
        cell_timeout_s=config.cell_timeout_s,
        max_retries=config.max_retries,
        registry=registry,
        store=assets.artifacts,
        cell_key=cell_key,
    )
    rows = [row for row in report.results if row is not None]
    return ResilienceResult(
        rows=rows,
        failed_cells=report.failed_cells,
        retries_total=report.retries_total,
    )
