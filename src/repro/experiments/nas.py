"""Fig. 3 — grid search over the NN topology (depth x width).

The paper's NAS evaluates fully-connected topologies on held-out data and
finds 4 hidden layers of 64 neurons best.  This runner splits the IL
dataset by AoI application (training kernels vs. held-out kernels) and
reports the test loss per grid point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.apps.catalog import HELDOUT_APPS, TRAINING_APPS
from repro.experiments.assets import AssetStore
from repro.il.dataset import ILDataset
from repro.nn.nas import GridSearchResult, grid_search
from repro.nn.training import TrainingConfig
from repro.utils.tables import ascii_table


@dataclass
class NASConfig:
    depths: Sequence[int] = (1, 2, 3, 4, 5, 6)
    widths: Sequence[int] = (8, 16, 32, 64, 128)
    training: TrainingConfig = field(default_factory=TrainingConfig)

    @classmethod
    def smoke(cls) -> "NASConfig":
        return cls(
            depths=(1, 2, 4),
            widths=(8, 32, 64),
            training=TrainingConfig(max_epochs=40, patience=10),
        )

    @classmethod
    def paper(cls) -> "NASConfig":
        return cls()


@dataclass
class NASResult:
    grid: GridSearchResult
    train_examples: int
    test_examples: int

    def as_rows(self) -> List[Tuple[int, int, float]]:
        return self.grid.as_rows()

    def report(self) -> str:
        table = ascii_table(
            ["hidden layers", "width", "test MSE"],
            [(d, w, loss) for d, w, loss in self.as_rows()],
        )
        return (
            f"{table}\n"
            f"best: {self.grid.best_depth} layers x {self.grid.best_width} "
            f"neurons (test MSE {self.grid.best_loss:.4f})"
        )


def split_dataset_by_apps(
    dataset: ILDataset,
    train_apps: Sequence[str] = TRAINING_APPS,
    test_apps: Sequence[str] = HELDOUT_APPS,
) -> Tuple[ILDataset, ILDataset]:
    """The paper's AoI-level train/test split."""
    return dataset.filter_by_apps(train_apps), dataset.filter_by_apps(test_apps)


def run_nas(
    assets: AssetStore,
    config: NASConfig = NASConfig(),
    train_apps: Optional[Sequence[str]] = None,
    test_apps: Optional[Sequence[str]] = None,
) -> NASResult:
    """Run the topology grid search on the asset store's dataset.

    When the dataset contains no held-out AoI examples (tiny smoke
    configurations can draw only training apps), a random 80/20 split is
    used instead so the search still runs.
    """
    dataset = assets.dataset()
    train = dataset.filter_by_apps(train_apps or TRAINING_APPS)
    test = dataset.filter_by_apps(test_apps or HELDOUT_APPS)
    if len(test) == 0 or len(train) == 0:
        n = len(dataset)
        cut = max(1, int(0.8 * n))
        train = ILDataset(
            dataset.features[:cut], dataset.labels[:cut], dataset.meta[:cut]
        )
        test = ILDataset(
            dataset.features[cut:], dataset.labels[cut:], dataset.meta[cut:]
        )
    grid = grid_search(
        train.features,
        train.labels,
        test.features,
        test.labels,
        depths=config.depths,
        widths=config.widths,
        config=config.training,
    )
    return NASResult(grid=grid, train_examples=len(train), test_examples=len(test))
