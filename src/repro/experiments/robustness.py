"""Ambient-temperature robustness (extension beyond the paper).

The paper evaluates generalization to unseen applications and to a
different cooling configuration.  A third environmental axis is the
ambient temperature: the oracle traces were collected at 25 degC in an
A/C room.  Because the TOP-IL policy never reads temperature at run time
(Table 2 contains no thermal feature), its *decisions* are
ambient-independent; only the absolute temperatures shift.  This
experiment verifies both halves of that statement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.assets import AssetStore
from repro.experiments.parallel import run_cells
from repro.il.technique import TopIL
from repro.platform import hikey970
from repro.store import ArtifactKey, cell_artifact_key
from repro.thermal import FAN_COOLING
from repro.utils.tables import ascii_table
from repro.workloads.generator import mixed_workload
from repro.workloads.runner import run_workload


@dataclass
class AmbientConfig:
    ambients_c: Sequence[float] = (15.0, 25.0, 35.0)
    n_apps: int = 6
    instruction_scale: float = 0.03
    seed: int = 17

    @classmethod
    def smoke(cls) -> "AmbientConfig":
        return cls(ambients_c=(15.0, 35.0))

    @classmethod
    def paper(cls) -> "AmbientConfig":
        return cls(n_apps=12, instruction_scale=0.15)


@dataclass
class AmbientResult:
    #: (ambient, mean temp, rise over ambient, violations, migrations)
    rows: List[Tuple[float, float, float, int, int]] = field(
        default_factory=list
    )

    def report(self) -> str:
        return ascii_table(
            ["ambient", "avg temp", "rise", "violations", "migrations"],
            [
                (f"{amb:.0f} C", f"{temp:.1f} C", f"{rise:.1f} C", viol, mig)
                for amb, temp, rise, viol, mig in self.rows
            ],
        )

    def max_violations(self) -> int:
        return max(r[3] for r in self.rows)

    def rise_spread_c(self) -> float:
        """How much the rise-over-ambient varies across ambients."""
        rises = [r[2] for r in self.rows]
        return max(rises) - min(rises)


# Shared read-only state for the ambient-sweep workers (pool initializer).
_AMBIENT_STATE: Dict[str, object] = {}


def _init_ambient_worker(assets: AssetStore, config: AmbientConfig) -> None:
    _AMBIENT_STATE["assets"] = assets
    _AMBIENT_STATE["config"] = config


def _run_ambient_cell(ambient: float) -> Tuple[float, float, float, int, int]:
    """One ambient-temperature simulation -> result row."""
    assets: AssetStore = _AMBIENT_STATE["assets"]  # type: ignore[assignment]
    config: AmbientConfig = _AMBIENT_STATE["config"]  # type: ignore[assignment]
    platform = hikey970(ambient_temp_c=ambient)
    workload = mixed_workload(
        platform,
        n_apps=config.n_apps,
        arrival_rate_per_s=1.0 / 8.0,
        seed=config.seed,
        instruction_scale=config.instruction_scale,
    )
    run = run_workload(
        platform, TopIL(assets.models()[0]), workload, cooling=FAN_COOLING,
        seed=config.seed,
    )
    return (
        ambient,
        run.summary.mean_temp_c,
        run.summary.mean_temp_c - ambient,
        run.summary.n_qos_violations,
        run.summary.migrations,
    )


def run_ambient_robustness(
    assets: AssetStore,
    config: AmbientConfig = AmbientConfig(),
    parallel: Optional[bool] = None,
    n_workers: Optional[int] = None,
) -> AmbientResult:
    """Run the same workload under TOP-IL at several ambient temperatures.

    The model was trained from traces at 25 degC; it must keep QoS intact
    at every ambient, and the temperature rise above ambient should be
    nearly ambient-independent (the RC model is linear; only the
    leakage feedback bends it slightly).  Ambients are independent cells
    and fan out over :func:`repro.experiments.parallel.run_cells`.
    """
    def cell_key(ambient: float) -> ArtifactKey:
        return cell_artifact_key(
            "ambient",
            ambient,
            config={
                "n_apps": config.n_apps,
                "instruction_scale": config.instruction_scale,
            },
            assets_config=assets.config.signature(),
            platform=assets.platform,
            seed=config.seed,
        )

    rows = run_cells(
        list(config.ambients_c),
        _run_ambient_cell,
        init=_init_ambient_worker,
        init_args=(assets, config),
        parallel=parallel,
        n_workers=n_workers,
        store=assets.artifacts,
        cell_key=cell_key,
    )
    return AmbientResult(rows=list(rows))
