"""Extension — cross-platform comparison over the platform zoo.

The paper evaluates on a single board; the generalization argument is
that nothing in TOP-IL is HiKey-specific.  This experiment runs the main
mixed-workload grid (:mod:`repro.experiments.main_mixed`) on every
registered platform and tabulates the per-technique thermal/QoS outcomes
side by side.

Per platform it builds a *dedicated* design-time asset set (oracle
traces, dataset, models, Q-tables where applicable) at one shared,
deliberately small :class:`AssetConfig` — the same training budget on
every platform keeps the comparison like-for-like, and the budget is kept
small because the section multiplies every cost by the registry size.
Techniques that do not apply to a topology (GTS and TOP-RL outside
big.LITTLE) are skipped and reported as such.  All per-platform artifacts
and grid cells key into the shared artifact store under the platform
fingerprint, so cross-platform sweeps stay incremental.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.assets import AssetConfig, AssetStore
from repro.experiments.main_mixed import (
    MainMixedConfig,
    MainMixedResult,
    run_main_mixed,
)
from repro.platform.registry import get_platform, get_spec, platform_names
from repro.thermal import FAN_COOLING
from repro.utils.tables import ascii_table

EXPERIMENT_NAME = "platforms"


@dataclass
class PlatformComparisonConfig:
    """Grid and per-platform asset budget of the cross-platform section.

    ``platforms`` is the registry subset to compare (empty = every
    registered platform, sorted).  ``main_mixed`` is the workload grid
    executed per platform; ``assets`` the design-time budget each
    platform's models are trained under.
    """

    platforms: Sequence[str] = ()
    main_mixed: MainMixedConfig = field(
        default_factory=lambda: MainMixedConfig(
            n_apps=6,
            arrival_rates=(1.0 / 6.0,),
            repetitions=1,
            coolings=(FAN_COOLING,),
            instruction_scale=0.02,
        )
    )
    assets: AssetConfig = field(
        default_factory=lambda: AssetConfig(
            n_scenarios=8,
            vf_levels_per_cluster=2,
            max_aoi_candidates=2,
            n_models=1,
            rl_episodes=2,
        )
    )

    @classmethod
    def smoke(cls) -> "PlatformComparisonConfig":
        """Seconds-per-platform sizes for CI."""
        return cls(
            main_mixed=MainMixedConfig(
                n_apps=3,
                arrival_rates=(1.0 / 4.0,),
                repetitions=1,
                coolings=(FAN_COOLING,),
                instruction_scale=0.01,
            ),
            assets=AssetConfig(
                n_scenarios=4,
                vf_levels_per_cluster=2,
                max_aoi_candidates=2,
                n_models=1,
                rl_episodes=1,
            ),
        )

    @classmethod
    def paper(cls) -> "PlatformComparisonConfig":
        """Minutes-per-platform sizes for the full report."""
        return cls(
            main_mixed=MainMixedConfig(
                n_apps=12,
                arrival_rates=(1.0 / 20.0,),
                repetitions=2,
                coolings=(FAN_COOLING,),
                instruction_scale=0.1,
            ),
            assets=AssetConfig(
                n_scenarios=14,
                vf_levels_per_cluster=3,
                max_aoi_candidates=3,
                n_models=2,
                rl_episodes=3,
            ),
        )


@dataclass
class PlatformComparisonResult:
    config: PlatformComparisonConfig
    #: per-platform grid results, in comparison order
    results: Dict[str, MainMixedResult] = field(default_factory=dict)

    def report(self) -> str:
        """One table: platform x technique outcomes, plus topology notes."""
        rows: List[Tuple[str, str, str, str, str, int]] = []
        notes: List[str] = []
        for name, result in self.results.items():
            spec = get_spec(name)
            npu = "NPU" if spec.npu.present else "no NPU (CPU inference)"
            notes.append(
                f"{name}: {spec.n_cores} cores in "
                f"{len(spec.clusters)} cluster(s) "
                f"[{', '.join(spec.cluster_names)}], {npu}"
            )
            if result.skipped_techniques:
                notes.append(
                    f"{name}: skipped "
                    + ", ".join(result.skipped_techniques)
                    + " (requires big.LITTLE)"
                )
            for agg in result.aggregates:
                rows.append(
                    (
                        name,
                        agg.technique,
                        f"{agg.mean_temp_c:.1f} C",
                        f"{agg.mean_violations:.1f}",
                        f"{100 * agg.mean_violation_fraction:.0f} %",
                        agg.dtm_throttle_events,
                    )
                )
        table = ascii_table(
            ["platform", "technique", "avg temp", "QoS violations",
             "violation %", "throttle events"],
            rows,
        )
        return table + "\n\n" + "\n".join(notes)


def run_platform_comparison(
    assets: AssetStore,
    config: Optional[PlatformComparisonConfig] = None,
    parallel: Optional[bool] = None,
    n_workers: Optional[int] = None,
    backend: str = "auto",
) -> PlatformComparisonResult:
    """Run the mixed-workload grid on every (selected) registry platform.

    ``assets`` supplies the shared artifact store and cache location; the
    per-platform asset sets are built from ``config.assets`` (not from
    ``assets.config``) so every platform trains under the same budget.
    Platforms are compared in sorted-name order for deterministic output.
    """
    config = config or PlatformComparisonConfig()
    names = list(config.platforms) if config.platforms else platform_names()
    asset_config = replace(
        config.assets, cache_dir=assets.config.cache_dir
    )
    result = PlatformComparisonResult(config=config)
    for name in sorted(names):
        platform_assets = AssetStore(
            get_platform(name), asset_config, artifacts=assets.artifacts
        )
        result.results[name] = run_main_mixed(
            platform_assets,
            config.main_mixed,
            parallel=parallel,
            n_workers=n_workers,
            backend=backend,
        )
    return result
