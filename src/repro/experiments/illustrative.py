"""Fig. 7 — illustrative example: IL vs RL mapping stability.

Runs *adi* (big-optimal) and *seidel-2d* (LITTLE-optimal) as single
applications under TOP-IL and TOP-RL, recording the cluster the AoI is
mapped to over time.  The paper's observation: TOP-IL consistently selects
the optimal cluster while TOP-RL oscillates, raising temperature during
the suboptimal intervals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.apps.catalog import get_app
from repro.apps.qos import qos_fraction_of_big_max
from repro.experiments.assets import AssetStore
from repro.governors.base import Technique
from repro.il.technique import TopIL
from repro.platform import Platform
from repro.platform.hikey import BIG, LITTLE
from repro.rl.technique import TopRL
from repro.utils.rng import RandomSource
from repro.utils.tables import ascii_table
from repro.workloads.generator import Workload, WorkloadItem
from repro.workloads.runner import run_workload


@dataclass
class IllustrativeConfig:
    apps: tuple = ("adi", "seidel-2d")
    qos_fraction: float = 0.3
    instruction_scale: float = 0.3
    seed: int = 7

    @classmethod
    def smoke(cls) -> "IllustrativeConfig":
        return cls(instruction_scale=0.04)

    @classmethod
    def paper(cls) -> "IllustrativeConfig":
        return cls(instruction_scale=1.0)


@dataclass
class IllustrativeRun:
    app: str
    technique: str
    fraction_on_big: float
    cluster_switches: int
    mean_temp_c: float
    qos_violated: bool
    cluster_series: List[str] = field(default_factory=list)
    time_series: List[float] = field(default_factory=list)


@dataclass
class IllustrativeResult:
    runs: List[IllustrativeRun] = field(default_factory=list)

    def get(self, app: str, technique: str) -> IllustrativeRun:
        for run in self.runs:
            if run.app == app and run.technique == technique:
                return run
        raise KeyError((app, technique))

    def timeline(self, app: str, technique: str, width: int = 60) -> str:
        """Fig. 7's mapping timeline as text: 'b' = big, 'L' = LITTLE.

        A dot marks samples where the application was not running
        (before arrival / after completion).
        """
        run = self.get(app, technique)
        series = run.cluster_series
        if not series:
            return ""
        stride = max(1, len(series) // width)
        sampled = series[::stride][:width]
        symbol = {BIG: "b", LITTLE: "L", "": "."}
        return "".join(symbol.get(c, "?") for c in sampled)

    def report(self) -> str:
        rows = [
            (
                r.app,
                r.technique,
                f"{100 * r.fraction_on_big:.0f} %",
                r.cluster_switches,
                f"{r.mean_temp_c:.1f} C",
                "violated" if r.qos_violated else "met",
            )
            for r in self.runs
        ]
        table = ascii_table(
            ["app", "technique", "time on big", "switches", "mean temp", "QoS"],
            rows,
        )
        timelines = "\n".join(
            f"{r.app:10s} {r.technique:7s} "
            f"[{self.timeline(r.app, r.technique)}]"
            for r in self.runs
        )
        return f"{table}\n\nmapping timelines (b = big, L = LITTLE):\n{timelines}"


def _cluster_series(result, pid: int, platform: Platform) -> List[str]:
    core_to_cluster = {
        c.core_id: c.cluster_name for c in platform.cores
    }
    return result.trace.cluster_of_samples(pid, core_to_cluster)


def run_illustrative(
    assets: AssetStore,
    config: IllustrativeConfig = IllustrativeConfig(),
) -> IllustrativeResult:
    """Run the four (app x technique) combinations of Fig. 7."""
    platform = assets.platform
    models = assets.models()
    qtables = assets.qtables()
    result = IllustrativeResult()
    for app_name in config.apps:
        app = get_app(app_name)
        target = qos_fraction_of_big_max(app, platform, config.qos_fraction)
        workload = Workload(
            name=f"illustrative-{app_name}",
            items=[WorkloadItem(app_name, target, 0.0)],
            instruction_scale=config.instruction_scale,
        )
        techniques: List[Technique] = [
            TopIL(models[0]),
            TopRL(
                qtable=qtables[0].copy(),
                rng=RandomSource(config.seed).child(f"rl-{app_name}"),
            ),
        ]
        for technique in techniques:
            run = run_workload(
                platform, technique, workload, seed=config.seed
            )
            pid = 0
            clusters = _cluster_series(run, pid, platform)
            active = [c for c in clusters if c]
            on_big = sum(1 for c in active if c == BIG)
            switches = sum(
                1 for a, b in zip(active, active[1:]) if a != b
            )
            process = run.sim.process(pid)
            result.runs.append(
                IllustrativeRun(
                    app=app_name,
                    technique=technique.name,
                    fraction_on_big=on_big / max(1, len(active)),
                    cluster_switches=switches,
                    mean_temp_c=run.summary.mean_temp_c,
                    qos_violated=process.violated_qos(run.sim.now_s),
                    cluster_series=clusters,
                    time_series=list(run.trace.times),
                )
            )
    return result
