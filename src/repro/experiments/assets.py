"""Shared experiment assets: trained IL models and pre-trained Q-tables.

Several experiments need the same design-time artifacts (the paper trains
three IL models and three RL policies once and reuses them everywhere).
:class:`AssetStore` builds them on first use and, when a cache directory
is configured, persists them through the content-addressed artifact store
(:mod:`repro.store`): the IL dataset, each trained model, and each
Q-table is cached under a key derived from everything that produced it,
so repeated benchmark invocations rebuild nothing and a config change
invalidates exactly the artifacts it affects.

``AssetConfig.cache_dir`` doubles as the store root.  Cache files written
by pre-store versions of this repository (flat ``il-dataset-*.npz`` /
``qtable-*.npz`` names) are neither read nor deleted; a one-time warning
points at them so operators can remove the dead bytes.
"""

from __future__ import annotations

import glob
import logging
import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set

from repro.il.dataset import ILDataset
from repro.il.pipeline import ILPipeline, PipelineConfig, generate_scenarios
from repro.nn.layers import Sequential
from repro.nn.training import TrainingConfig
from repro.platform import Platform, hikey970
from repro.rl.pretrain import pretrain_qtable
from repro.rl.qtable import QTable
from repro.store import (
    ArtifactKey,
    ArtifactStore,
    ILDatasetHandle,
    ModelHandle,
    QTableHandle,
)
from repro.utils.rng import RandomSource
from repro.utils.validation import check_positive

_LOG = logging.getLogger("repro.experiments.assets")

#: Cache roots already checked for pre-store legacy files (per process).
_LEGACY_CHECKED: Set[str] = set()


def _warn_legacy_cache_files(root: str) -> None:
    """One-time warning for cache files from the pre-store naming scheme.

    Legacy entries are ignored, never silently shadowed: the store only
    reads entries it wrote (digest-named payload + meta pairs), so stale
    flat ``.npz`` files cannot leak into results — they just waste disk.
    """
    root = os.path.abspath(root)
    if root in _LEGACY_CHECKED:
        return
    _LEGACY_CHECKED.add(root)
    legacy = sorted(
        path
        for pattern in ("il-dataset-*.npz", "qtable-*.npz")
        for path in glob.glob(os.path.join(root, pattern))
    )
    if legacy:
        _LOG.warning(
            "cache dir %s contains %d file(s) from the pre-store cache "
            "layout (%s%s); they are ignored by the artifact store — delete "
            "them or run `python -m repro.cli cache clear` to reclaim disk",
            root,
            len(legacy),
            ", ".join(os.path.basename(p) for p in legacy[:3]),
            ", ..." if len(legacy) > 3 else "",
        )


@dataclass
class AssetConfig:
    """Size knobs of the shared design-time artifacts."""

    n_scenarios: int = 60
    vf_levels_per_cluster: int = 4
    max_aoi_candidates: int = 4
    n_models: int = 3
    training: TrainingConfig = field(default_factory=TrainingConfig)
    rl_episodes: int = 3
    rl_instruction_scale: float = 0.05
    seed: int = 42
    #: Artifact-store root; ``None`` disables on-disk caching entirely.
    cache_dir: Optional[str] = None

    def __post_init__(self):
        check_positive("n_scenarios", self.n_scenarios)

    def signature(self) -> Dict[str, object]:
        """The cache-key view of this config: everything except where
        the cache lives (the same artifacts are valid under any root)."""
        return {
            "n_scenarios": self.n_scenarios,
            "vf_levels_per_cluster": self.vf_levels_per_cluster,
            "max_aoi_candidates": self.max_aoi_candidates,
            "n_models": self.n_models,
            "training": self.training,
            "rl_episodes": self.rl_episodes,
            "rl_instruction_scale": self.rl_instruction_scale,
            "seed": self.seed,
        }

    @classmethod
    def smoke(cls, cache_dir: Optional[str] = None) -> "AssetConfig":
        """A minute-scale configuration for tests and CI benchmarks.

        Large enough that the trained policy exhibits the paper's
        behaviours (e.g. migrating adi to the big cluster), small enough
        to build in well under a minute.
        """
        return cls(
            n_scenarios=14,
            vf_levels_per_cluster=3,
            max_aoi_candidates=3,
            n_models=2,
            training=TrainingConfig(max_epochs=150, patience=20),
            rl_episodes=1,
            rl_instruction_scale=0.02,
            cache_dir=cache_dir,
        )

    @classmethod
    def paper(cls, cache_dir: Optional[str] = None) -> "AssetConfig":
        """The paper-sized configuration (100 scenarios, 3 models)."""
        return cls(n_scenarios=100, n_models=3, cache_dir=cache_dir)


class AssetStore:
    """Lazily builds and caches models, datasets, and Q-tables."""

    def __init__(
        self,
        platform: Optional[Platform] = None,
        config: Optional[AssetConfig] = None,
        artifacts: Optional[ArtifactStore] = None,
    ):
        self.platform = platform or hikey970()
        self.config = config or AssetConfig()
        self._dataset: Optional[ILDataset] = None
        self._models: Optional[List[Sequential]] = None
        self._qtables: Optional[List[QTable]] = None
        self._pipeline: Optional[ILPipeline] = None
        #: Explicit store wins; else one is opened on ``config.cache_dir``.
        self._artifacts = artifacts
        self._artifacts_resolved = artifacts is not None

    # ------------------------------------------------------------------ store
    @property
    def artifacts(self) -> Optional[ArtifactStore]:
        """The artifact store backing this asset set (None = no caching)."""
        if not self._artifacts_resolved:
            self._artifacts_resolved = True
            if self.config.cache_dir is not None:
                _warn_legacy_cache_files(self.config.cache_dir)
                self._artifacts = ArtifactStore(self.config.cache_dir)
        return self._artifacts

    # ------------------------------------------------------------------ keys
    def dataset_key(self) -> ArtifactKey:
        """Content address of the IL dataset these assets train on."""
        cfg = self.pipeline().config
        return ArtifactKey.create(
            "il-dataset",
            config={
                "n_scenarios": cfg.n_scenarios,
                "apps": list(cfg.apps),
                "vf_levels_per_cluster": cfg.vf_levels_per_cluster,
                "qos_fractions": list(cfg.qos_fractions),
                "max_background_apps": cfg.max_background_apps,
                "max_aoi_candidates": cfg.max_aoi_candidates,
                "label_config": cfg.label_config,
                "cooling": self.pipeline().cooling,
            },
            platform=self.platform,
            seed=cfg.seed,
        )

    def model_key(self, index: int) -> ArtifactKey:
        """Content address of the ``index``-th trained IL model."""
        cfg = self.pipeline().config
        return ArtifactKey.create(
            "model",
            config={
                "dataset": self.dataset_key().digest,
                "hidden_layers": cfg.hidden_layers,
                "hidden_width": cfg.hidden_width,
                "training": cfg.training,
                "index": index,
            },
            platform=self.platform,
            seed=cfg.seed,
        )

    def qtable_key(self, index: int) -> ArtifactKey:
        """Content address of the ``index``-th pre-trained Q-table."""
        return ArtifactKey.create(
            "qtable",
            config={
                "episodes": self.config.rl_episodes,
                "instruction_scale": self.config.rl_instruction_scale,
                "index": index,
            },
            platform=self.platform,
            seed=self.config.seed + index,
        )

    # ------------------------------------------------------------------ pipeline
    def pipeline(self) -> ILPipeline:
        if self._pipeline is None:
            cfg = PipelineConfig(
                n_scenarios=self.config.n_scenarios,
                vf_levels_per_cluster=self.config.vf_levels_per_cluster,
                max_aoi_candidates=self.config.max_aoi_candidates,
                n_models=self.config.n_models,
                training=self.config.training,
                seed=self.config.seed,
            )
            self._pipeline = ILPipeline(
                self.platform, config=cfg, artifacts=self.artifacts
            )
        return self._pipeline

    def _build_dataset(self) -> ILDataset:
        """Scenarios -> (per-scenario cached) traces -> dataset."""
        pipeline = self.pipeline()
        scenarios = generate_scenarios(
            self.platform,
            pipeline.config.apps,
            pipeline.config.n_scenarios,
            RandomSource(pipeline.config.seed).child("scenarios"),
            pipeline.config.max_background_apps,
        )
        grids = pipeline.collect_traces(scenarios)
        return pipeline.build_dataset(grids)

    def dataset(self) -> ILDataset:
        """The IL training dataset (built or loaded from the store)."""
        if self._dataset is None:
            store = self.artifacts
            if store is None:
                self._dataset = self._build_dataset()
            else:
                self._dataset = store.get_or_create(
                    self.dataset_key(), ILDatasetHandle(), self._build_dataset
                )
        return self._dataset

    def models(self) -> List[Sequential]:
        """The trained IL models (one per random seed, cached per model)."""
        if self._models is None:
            store = self.artifacts
            models: List[Sequential] = []
            for i in range(self.config.n_models):
                if store is None:
                    models.append(self.pipeline().train_single(self.dataset(), i)[0])
                else:
                    models.append(
                        store.get_or_create(
                            self.model_key(i),
                            ModelHandle(),
                            lambda index=i: self.pipeline().train_single(
                                self.dataset(), index
                            )[0],
                        )
                    )
            self._models = models
        return self._models

    def qtables(self) -> List[QTable]:
        """Pre-trained RL Q-tables (one per random seed)."""
        if self._qtables is None:
            store = self.artifacts
            tables: List[QTable] = []
            for i in range(self.config.n_models):
                def build(index: int = i) -> QTable:
                    return pretrain_qtable(
                        self.platform,
                        seed=self.config.seed + index,
                        episodes=self.config.rl_episodes,
                        instruction_scale=self.config.rl_instruction_scale,
                    )

                if store is None:
                    tables.append(build())
                else:
                    tables.append(
                        store.get_or_create(
                            self.qtable_key(i), QTableHandle(), build
                        )
                    )
            self._qtables = tables
        return self._qtables

    def with_config(self, **overrides) -> "AssetStore":
        """A new store sharing the platform but with config overrides."""
        return AssetStore(self.platform, replace(self.config, **overrides))
