"""Shared experiment assets: trained IL models and pre-trained Q-tables.

Several experiments need the same design-time artifacts (the paper trains
three IL models and three RL policies once and reuses them everywhere).
:class:`AssetStore` builds them on first use and caches the expensive parts
(the IL dataset, the Q-tables) on disk so repeated benchmark invocations
are fast.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.il.dataset import ILDataset
from repro.il.pipeline import ILPipeline, PipelineConfig
from repro.nn.layers import Sequential
from repro.nn.training import TrainingConfig
from repro.platform import Platform, hikey970
from repro.rl.pretrain import pretrain_qtable
from repro.rl.qtable import QTable
from repro.utils.validation import check_positive


@dataclass
class AssetConfig:
    """Size knobs of the shared design-time artifacts."""

    n_scenarios: int = 60
    vf_levels_per_cluster: int = 4
    max_aoi_candidates: int = 4
    n_models: int = 3
    training: TrainingConfig = field(default_factory=TrainingConfig)
    rl_episodes: int = 3
    rl_instruction_scale: float = 0.05
    seed: int = 42
    cache_dir: Optional[str] = None

    def __post_init__(self):
        check_positive("n_scenarios", self.n_scenarios)

    @classmethod
    def smoke(cls, cache_dir: Optional[str] = None) -> "AssetConfig":
        """A minute-scale configuration for tests and CI benchmarks.

        Large enough that the trained policy exhibits the paper's
        behaviours (e.g. migrating adi to the big cluster), small enough
        to build in well under a minute.
        """
        return cls(
            n_scenarios=14,
            vf_levels_per_cluster=3,
            max_aoi_candidates=3,
            n_models=2,
            training=TrainingConfig(max_epochs=150, patience=20),
            rl_episodes=1,
            rl_instruction_scale=0.02,
            cache_dir=cache_dir,
        )

    @classmethod
    def paper(cls, cache_dir: Optional[str] = None) -> "AssetConfig":
        """The paper-sized configuration (100 scenarios, 3 models)."""
        return cls(n_scenarios=100, n_models=3, cache_dir=cache_dir)


class AssetStore:
    """Lazily builds and caches models, datasets, and Q-tables."""

    def __init__(
        self,
        platform: Optional[Platform] = None,
        config: Optional[AssetConfig] = None,
    ):
        self.platform = platform or hikey970()
        self.config = config or AssetConfig()
        self._dataset: Optional[ILDataset] = None
        self._models: Optional[List[Sequential]] = None
        self._qtables: Optional[List[QTable]] = None
        self._pipeline: Optional[ILPipeline] = None

    # ------------------------------------------------------------------ paths
    def _cache_path(self, name: str) -> Optional[str]:
        if self.config.cache_dir is None:
            return None
        os.makedirs(self.config.cache_dir, exist_ok=True)
        tag = (
            f"s{self.config.n_scenarios}-v{self.config.vf_levels_per_cluster}"
            f"-c{self.config.max_aoi_candidates}-seed{self.config.seed}"
        )
        return os.path.join(self.config.cache_dir, f"{name}-{tag}.npz")

    # ------------------------------------------------------------------ pipeline
    def pipeline(self) -> ILPipeline:
        if self._pipeline is None:
            cfg = PipelineConfig(
                n_scenarios=self.config.n_scenarios,
                vf_levels_per_cluster=self.config.vf_levels_per_cluster,
                max_aoi_candidates=self.config.max_aoi_candidates,
                n_models=self.config.n_models,
                training=self.config.training,
                seed=self.config.seed,
                cache_path=self._cache_path("il-dataset"),
            )
            self._pipeline = ILPipeline(self.platform, config=cfg)
        return self._pipeline

    def dataset(self) -> ILDataset:
        """The IL training dataset (built or loaded from cache)."""
        if self._dataset is None:
            pipeline = self.pipeline()
            cache = pipeline.config.cache_path
            if cache is not None and os.path.exists(cache):
                self._dataset = ILDataset.load(cache)
            else:
                from repro.il.pipeline import generate_scenarios
                from repro.utils.rng import RandomSource

                scenarios = generate_scenarios(
                    self.platform,
                    pipeline.config.apps,
                    pipeline.config.n_scenarios,
                    RandomSource(pipeline.config.seed).child("scenarios"),
                    pipeline.config.max_background_apps,
                )
                grids = pipeline.collect_traces(scenarios)
                self._dataset = pipeline.build_dataset(grids)
                if cache is not None:
                    self._dataset.save(cache)
        return self._dataset

    def models(self) -> List[Sequential]:
        """The trained IL models (one per random seed)."""
        if self._models is None:
            result = self.pipeline().train_models(self.dataset())
            self._models = result.models
        return self._models

    def qtables(self) -> List[QTable]:
        """Pre-trained RL Q-tables (one per random seed)."""
        if self._qtables is None:
            tables: List[QTable] = []
            for i in range(self.config.n_models):
                path = self._cache_path(f"qtable-{i}")
                if path is not None and os.path.exists(path):
                    tables.append(QTable.load(path))
                    continue
                table = pretrain_qtable(
                    self.platform,
                    seed=self.config.seed + i,
                    episodes=self.config.rl_episodes,
                    instruction_scale=self.config.rl_instruction_scale,
                )
                if path is not None:
                    table.save(path)
                tables.append(table)
            self._qtables = tables
        return self._qtables

    def with_config(self, **overrides) -> "AssetStore":
        """A new store sharing the platform but with config overrides."""
        return AssetStore(self.platform, replace(self.config, **overrides))
