"""Fig. 1 — motivational example: the optimal mapping depends on the
application and on the background.

Scenario 1 runs *adi* or *seidel-2d* alone with a QoS target of 30 % of the
IPS reached at the highest big-cluster VF level.  Each cluster mapping is
operated at the lowest VF levels satisfying the target; the steady
temperatures show that *adi* is cooler on the big cluster while *seidel-2d*
is (slightly) cooler on LITTLE.

Scenario 2 adds background applications with high QoS targets that force
both clusters to their peak VF level; with per-cluster DVFS the AoI then
runs at peak either way and the two mappings become nearly equivalent.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.apps.catalog import get_app
from repro.apps.qos import fastest_cluster, qos_fraction_of_big_max, reference_cluster
from repro.platform import Platform, VFLevel, hikey970
from repro.platform.hikey import BIG, LITTLE
from repro.sim.kernel import SimConfig, Simulator
from repro.thermal import CoolingConfig, FAN_COOLING
from repro.utils.tables import ascii_table
from repro.utils.units import format_frequency, format_temperature
from repro.utils.validation import check_positive


@dataclass
class MotivationConfig:
    """Sizes of the motivational experiment."""

    apps: Tuple[str, ...] = ("adi", "seidel-2d")
    qos_fraction: float = 0.3
    little_core: int = 0
    big_core: int = 4
    observe_s: float = 150.0
    background_app: str = "syr2k"
    dt_s: float = 0.02

    def __post_init__(self):
        check_positive("observe_s", self.observe_s)

    @classmethod
    def smoke(cls) -> "MotivationConfig":
        return cls(observe_s=30.0)

    @classmethod
    def paper(cls) -> "MotivationConfig":
        return cls()


@dataclass
class MappingOutcome:
    """Result of running one AoI mapping at its minimum feasible VF levels.

    ``f_l_hz``/``f_b_hz`` are the operating frequencies of the slow and
    fast mapping clusters (``LITTLE``/``big`` on the HiKey 970).
    """

    app: str
    scenario: int
    mapped_cluster: str
    f_l_hz: float
    f_b_hz: float
    temp_c: float
    feasible: bool


@dataclass
class MotivationResult:
    outcomes: List[MappingOutcome] = field(default_factory=list)

    def optimal_cluster(self, app: str, scenario: int) -> Optional[str]:
        """The cooler feasible mapping for (app, scenario)."""
        candidates = [
            o
            for o in self.outcomes
            if o.app == app and o.scenario == scenario and o.feasible
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda o: o.temp_c).mapped_cluster

    def temperature_gap(self, app: str, scenario: int) -> float:
        """|T_slow - T_fast| between the two mappings of one (app, scenario)."""
        temps = {
            o.mapped_cluster: o.temp_c
            for o in self.outcomes
            if o.app == app and o.scenario == scenario and o.feasible
        }
        if len(temps) < 2:
            return float("inf")
        values = list(temps.values())
        return abs(values[0] - values[1])

    def report(self) -> str:
        rows = [
            (
                o.app,
                o.scenario,
                o.mapped_cluster,
                format_frequency(o.f_l_hz),
                format_frequency(o.f_b_hz),
                format_temperature(o.temp_c) if o.feasible else "QoS infeasible",
            )
            for o in self.outcomes
        ]
        return ascii_table(
            ["app", "scenario", "mapping", "f_slow", "f_fast", "temperature"],
            rows,
        )


def _steady_temp(
    platform: Platform,
    cooling: CoolingConfig,
    placements: Dict[int, str],
    vf: Dict[str, VFLevel],
    observe_s: float,
    dt_s: float,
) -> float:
    """Run fixed placements at fixed VF levels; return the final sensor temp."""
    sim = Simulator(
        platform,
        cooling,
        config=SimConfig(dt_s=dt_s, model_overhead_on_core=None),
        sensor_noise_std_c=0.0,
    )
    for name, level in vf.items():
        sim.set_vf_level(name, level)
    assignment: Dict[int, int] = {}
    for core, app_name in placements.items():
        app = dataclasses.replace(get_app(app_name), total_instructions=1e15)
        pid = sim.submit(app, qos_target_ips=1.0, arrival_time_s=0.0)
        assignment[pid] = core
    sim.placement_policy = lambda s, p: assignment[p.pid]
    sim.run_for(observe_s)
    return sim.sensor_temp_c()


def _mapping_choices(
    platform: Platform, config: MotivationConfig
) -> List[Tuple[str, int]]:
    """The two candidate AoI mappings as (cluster, core) pairs.

    On big.LITTLE the configured cores are used verbatim (the paper's
    setup); any other multi-cluster platform compares the first core of
    the reference (slowest) cluster against the first core of the fastest
    cluster.  A single-cluster platform has no mapping choice, which is
    the whole premise of Fig. 1 — it raises rather than degenerating.
    """
    names = {c.name for c in platform.clusters}
    if {LITTLE, BIG} <= names:
        return [(LITTLE, config.little_core), (BIG, config.big_core)]
    reference = reference_cluster(platform)
    fastest = fastest_cluster(platform)
    if reference.name == fastest.name:
        raise ValueError(
            f"the motivational experiment compares cluster mappings and "
            f"needs at least two clusters; platform {platform.name!r} has "
            f"{sorted(names)}"
        )
    return [
        (reference.name, reference.core_ids[0]),
        (fastest.name, fastest.core_ids[0]),
    ]


def _background_placements(
    platform: Platform,
    mappings: List[Tuple[str, int]],
    background_app: str,
) -> Dict[int, str]:
    """Two background apps per mapping cluster, skipping the AoI cores.

    On the HiKey 970 this reproduces the paper's cores {1, 2, 5, 6}.
    """
    aoi_cores = {core for _, core in mappings}
    placements: Dict[int, str] = {}
    for cluster_name, _ in mappings:
        free = [
            c
            for c in platform.cores_in_cluster(cluster_name)
            if c not in aoi_cores
        ]
        for core in free[:2]:
            placements[core] = background_app
    return placements


def run_motivation(
    config: MotivationConfig = MotivationConfig(),
    platform: Optional[Platform] = None,
    cooling: CoolingConfig = FAN_COOLING,
) -> MotivationResult:
    """Run both scenarios for every configured application."""
    platform = platform or hikey970()
    result = MotivationResult()
    mappings = _mapping_choices(platform, config)
    slow_name, fast_name = mappings[0][0], mappings[1][0]

    for app_name in config.apps:
        app = get_app(app_name)
        target = qos_fraction_of_big_max(app, platform, config.qos_fraction)

        # --- Scenario 1: AoI alone, lowest VF levels meeting the target.
        for cluster_name, core in mappings:
            cluster = platform.cluster(cluster_name)
            level = app.min_frequency_for(cluster_name, cluster.vf_table, target)
            if level is None:
                result.outcomes.append(
                    MappingOutcome(
                        app_name, 1, cluster_name, 0.0, 0.0, float("nan"), False
                    )
                )
                continue
            vf = {
                c.name: (level if c.name == cluster_name else c.vf_table.min_level)
                for c in platform.clusters
            }
            temp = _steady_temp(
                platform, cooling, {core: app_name}, vf, config.observe_s, config.dt_s
            )
            result.outcomes.append(
                MappingOutcome(
                    app_name,
                    1,
                    cluster_name,
                    vf[slow_name].frequency_hz,
                    vf[fast_name].frequency_hz,
                    temp,
                    True,
                )
            )

        # --- Scenario 2: heavy background pins both clusters at peak VF.
        background = _background_placements(
            platform, mappings, config.background_app
        )
        vf = platform.max_vf_levels()
        for cluster_name, core in mappings:
            placements = dict(background)
            placements[core] = app_name
            temp = _steady_temp(
                platform, cooling, placements, vf, config.observe_s, config.dt_s
            )
            result.outcomes.append(
                MappingOutcome(
                    app_name,
                    2,
                    cluster_name,
                    vf[slow_name].frequency_hz,
                    vf[fast_name].frequency_hz,
                    temp,
                    True,
                )
            )
    return result
