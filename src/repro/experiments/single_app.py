"""Fig. 11 — single-application workloads with only unseen applications.

Every application here is *unseen* (never used for IL training or RL
pre-training): the eight PARSEC applications plus the held-out Polybench
kernels.  QoS targets are set so they can be met at the highest LITTLE VF
level.  The paper's finding: only TOP-IL achieves both a low temperature
and zero QoS violations; powersave violates almost everything except the
memory-bound canneal; RL's instability violates ~1/3 of executions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.apps.catalog import HELDOUT_APPS, PARSEC_APPS
from repro.experiments.assets import AssetStore
from repro.experiments.main_mixed import TECHNIQUE_NAMES, _make_technique
from repro.thermal import CoolingConfig, FAN_COOLING
from repro.utils.tables import ascii_table
from repro.workloads.generator import single_app_workload
from repro.workloads.runner import run_workload


@dataclass
class SingleAppConfig:
    apps: Sequence[str] = PARSEC_APPS + HELDOUT_APPS
    techniques: Sequence[str] = TECHNIQUE_NAMES
    repetitions: int = 3
    qos_fraction_of_little_max: float = 0.75
    instruction_scale: float = 0.3
    seed: int = 23

    @classmethod
    def smoke(cls) -> "SingleAppConfig":
        return cls(
            apps=("canneal", "swaptions", "jacobi-2d"),
            repetitions=2,
            instruction_scale=0.02,
        )

    @classmethod
    def paper(cls) -> "SingleAppConfig":
        return cls(instruction_scale=1.0)


@dataclass
class SingleAppOutcome:
    app: str
    technique: str
    mean_temp_c: float
    std_temp_c: float
    violations: int  # number of repetitions with a QoS violation
    repetitions: int


@dataclass
class SingleAppResult:
    outcomes: List[SingleAppOutcome] = field(default_factory=list)

    def get(self, app: str, technique: str) -> SingleAppOutcome:
        for o in self.outcomes:
            if o.app == app and o.technique == technique:
                return o
        raise KeyError((app, technique))

    def total_violations(self, technique: str) -> int:
        return sum(o.violations for o in self.outcomes if o.technique == technique)

    def total_executions(self, technique: str) -> int:
        return sum(o.repetitions for o in self.outcomes if o.technique == technique)

    def mean_temp(self, technique: str) -> float:
        temps = [o.mean_temp_c for o in self.outcomes if o.technique == technique]
        return float(np.mean(temps))

    def report(self) -> str:
        rows = [
            (
                o.app,
                o.technique,
                f"{o.mean_temp_c:.1f} +/- {o.std_temp_c:.1f} C",
                f"{o.violations}/{o.repetitions}",
            )
            for o in self.outcomes
        ]
        table = ascii_table(["app", "technique", "avg temp", "violations"], rows)
        summary_rows = [
            (
                t,
                f"{self.mean_temp(t):.1f} C",
                f"{self.total_violations(t)}/{self.total_executions(t)}",
            )
            for t in sorted({o.technique for o in self.outcomes})
        ]
        summary = ascii_table(["technique", "mean temp", "violated runs"], summary_rows)
        return f"{table}\n\n{summary}"


def run_single_app(
    assets: AssetStore,
    config: SingleAppConfig = SingleAppConfig(),
    cooling: CoolingConfig = FAN_COOLING,
) -> SingleAppResult:
    """Run every (app x technique) with ``repetitions`` different models."""
    platform = assets.platform
    result = SingleAppResult()
    for app_name in config.apps:
        workload = single_app_workload(
            app_name,
            platform,
            qos_fraction_of_little_max=config.qos_fraction_of_little_max,
            instruction_scale=config.instruction_scale,
        )
        for name in config.techniques:
            temps: List[float] = []
            violations = 0
            for rep in range(config.repetitions):
                technique = _make_technique(name, assets, rep, config.seed + rep)
                run = run_workload(
                    platform,
                    technique,
                    workload,
                    cooling=cooling,
                    seed=config.seed + rep,
                )
                temps.append(run.summary.mean_temp_c)
                if run.summary.n_qos_violations > 0:
                    violations += 1
            result.outcomes.append(
                SingleAppOutcome(
                    app=app_name,
                    technique=name,
                    mean_temp_c=float(np.mean(temps)),
                    std_temp_c=float(np.std(temps)),
                    violations=violations,
                    repetitions=config.repetitions,
                )
            )
    return result
