"""Cooling configurations (active fan vs. passive).

The paper collects oracle traces with a fan (to avoid DTM polluting the
training data) and evaluates both with and without the fan to show the
policy generalizes across cooling.  To first order a fan multiplies the
convective conductance from the board/heatsink to ambient; that is exactly
what :class:`CoolingConfig` captures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class CoolingConfig:
    """Board-level cooling description.

    Parameters
    ----------
    name:
        Human-readable identifier used in experiment reports.
    board_to_ambient_w_per_k:
        Convective conductance from the board node to ambient (W/K).
        Active cooling increases it roughly 3x over natural convection.
    board_capacitance_j_per_k:
        Thermal capacitance of the board + heatsink assembly; sets the
        minutes-scale warm-up/cool-down dynamics (the paper waits 10 min
        between runs and warms up backgrounds for 2 min).
    """

    name: str
    board_to_ambient_w_per_k: float
    board_capacitance_j_per_k: float = 60.0

    def __post_init__(self) -> None:
        check_positive("board_to_ambient_w_per_k", self.board_to_ambient_w_per_k)
        check_positive("board_capacitance_j_per_k", self.board_capacitance_j_per_k)


#: Active cooling with the fan used during oracle trace collection.
FAN_COOLING = CoolingConfig(name="fan", board_to_ambient_w_per_k=0.70)

#: Passive cooling (no fan) used to test generalization in Sec. 7.2.
PASSIVE_COOLING = CoolingConfig(name="no_fan", board_to_ambient_w_per_k=0.24)
