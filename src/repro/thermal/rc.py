"""Lumped RC thermal network with an exact matrix-exponential integrator.

The network is the standard compact thermal model: nodes with heat
capacities ``C_i`` connected by thermal conductances ``G_ij``, plus
conductances to a fixed-temperature ambient.  Working in temperatures
*above ambient* ``theta = T - T_amb`` gives the linear state-space system

    C * dtheta/dt = -G * theta + P(t)

where ``G`` is the (symmetric, positive-definite) conductance Laplacian
augmented with the ambient conductances on the diagonal, and ``P`` is the
per-node power injection.  For a step of length ``dt`` with power held
constant the exact solution is

    theta(t + dt) = A * theta(t) + (I - A) * theta_ss,
    A = expm(-C^-1 G dt),      theta_ss = G^-1 P.

``A`` is precomputed and cached per ``dt``, so stepping is two mat-vecs —
fast enough to run hours of simulated time at a 50 ms resolution.

Physical invariants (exercised by the property-test suite):

* passivity: with P = 0, ``max |theta|`` never increases;
* the steady state for constant P is ``G^-1 P`` regardless of the path;
* superposition: the response is linear in P.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np
from scipy.linalg import expm

from repro.utils.validation import check_finite, check_positive


class RCThermalNetwork:
    """A compact RC thermal model over named nodes.

    Build the network with :meth:`add_node`, :meth:`connect`, and
    :meth:`connect_to_ambient`, then call :meth:`finalize` once before
    stepping.  Temperatures are reported in degrees Celsius; the ambient
    temperature can be changed at run time (it shifts all node temperatures
    since the model is linear in ``theta``).
    """

    def __init__(self, ambient_temp_c: float = 25.0):
        self.ambient_temp_c = float(ambient_temp_c)
        self._names: List[str] = []
        self._index: Dict[str, int] = {}
        self._capacitance: List[float] = []
        self._edges: List[Tuple[int, int, float]] = []
        self._ambient_conductance: Dict[int, float] = {}
        self._finalized = False
        # Set by finalize():
        self._cap_vector: Optional[np.ndarray] = None
        self._g_matrix: Optional[np.ndarray] = None
        self._g_inv: Optional[np.ndarray] = None
        self._theta: Optional[np.ndarray] = None
        self._expm_cache: Dict[float, np.ndarray] = {}

    # --- construction -------------------------------------------------------------
    def add_node(self, name: str, capacitance_j_per_k: float) -> None:
        """Register a thermal node with the given heat capacity."""
        if self._finalized:
            raise RuntimeError("network already finalized")
        if name in self._index:
            raise ValueError(f"duplicate thermal node {name!r}")
        check_positive(f"capacitance of {name}", capacitance_j_per_k)
        self._index[name] = len(self._names)
        self._names.append(name)
        self._capacitance.append(float(capacitance_j_per_k))

    def connect(self, a: str, b: str, conductance_w_per_k: float) -> None:
        """Add a thermal conductance between nodes ``a`` and ``b``."""
        if self._finalized:
            raise RuntimeError("network already finalized")
        check_positive(f"conductance {a}-{b}", conductance_w_per_k)
        ia, ib = self._index[a], self._index[b]
        if ia == ib:
            raise ValueError("cannot connect a node to itself")
        self._edges.append((ia, ib, float(conductance_w_per_k)))

    def connect_to_ambient(self, name: str, conductance_w_per_k: float) -> None:
        """Add a conductance from ``name`` to the fixed-temperature ambient."""
        if self._finalized:
            raise RuntimeError("network already finalized")
        check_positive(f"ambient conductance of {name}", conductance_w_per_k)
        idx = self._index[name]
        self._ambient_conductance[idx] = (
            self._ambient_conductance.get(idx, 0.0) + conductance_w_per_k
        )

    def finalize(self) -> None:
        """Assemble matrices and reset temperatures to ambient."""
        if self._finalized:
            raise RuntimeError("network already finalized")
        n = len(self._names)
        if n == 0:
            raise ValueError("thermal network has no nodes")
        if not self._ambient_conductance:
            raise ValueError("no path to ambient: temperatures would diverge")
        g = np.zeros((n, n))
        for ia, ib, cond in self._edges:
            g[ia, ia] += cond
            g[ib, ib] += cond
            g[ia, ib] -= cond
            g[ib, ia] -= cond
        for idx, cond in self._ambient_conductance.items():
            g[idx, idx] += cond
        self._cap_vector = np.asarray(self._capacitance, dtype=float)
        self._g_matrix = g
        self._g_inv = np.linalg.inv(g)
        self._theta = np.zeros(n)
        self._finalized = True

    # --- introspection -------------------------------------------------------------
    @property
    def node_names(self) -> List[str]:
        return list(self._names)

    @property
    def n_nodes(self) -> int:
        return len(self._names)

    def node_index(self, name: str) -> int:
        return self._index[name]

    @property
    def conductance_matrix(self) -> np.ndarray:
        """The assembled conductance Laplacian (finalized networks only)."""
        self._require_finalized()
        return self._g_matrix.copy()

    # --- state access ----------------------------------------------------------------
    def temperatures(self) -> Dict[str, float]:
        """Current temperature (deg C) of every node."""
        self._require_finalized()
        return {
            name: float(self._theta[i] + self.ambient_temp_c)
            for i, name in enumerate(self._names)
        }

    def temperature_of(self, name: str) -> float:
        self._require_finalized()
        return float(self._theta[self._index[name]] + self.ambient_temp_c)

    def max_temperature(self, nodes: Optional[List[str]] = None) -> float:
        """Max temperature over ``nodes`` (default: all nodes)."""
        self._require_finalized()
        if nodes is None:
            return float(np.max(self._theta) + self.ambient_temp_c)
        idx = [self._index[n] for n in nodes]
        return float(np.max(self._theta[idx]) + self.ambient_temp_c)

    def set_temperatures(self, temps_c: Mapping[str, float]) -> None:
        """Force node temperatures (used to start runs warm or cold)."""
        self._require_finalized()
        for name, temp in temps_c.items():
            self._theta[self._index[name]] = float(temp) - self.ambient_temp_c

    def reset(self, temp_c: Optional[float] = None) -> None:
        """Reset every node to ``temp_c`` (default: ambient)."""
        self._require_finalized()
        value = self.ambient_temp_c if temp_c is None else float(temp_c)
        self._theta[:] = value - self.ambient_temp_c

    # --- dynamics -----------------------------------------------------------------------
    def steady_state(self, power_w: Mapping[str, float]) -> Dict[str, float]:
        """Temperatures reached if ``power_w`` were applied forever."""
        self._require_finalized()
        p = self._power_vector(power_w)
        theta_ss = self._g_inv @ p
        return {
            name: float(theta_ss[i] + self.ambient_temp_c)
            for i, name in enumerate(self._names)
        }

    def step(self, power_w: Mapping[str, float], dt_s: float) -> Dict[str, float]:
        """Advance the network by ``dt_s`` with constant power, return temps."""
        self._require_finalized()
        check_positive("dt_s", dt_s)
        p = self._power_vector(power_w)
        a = self._propagator(dt_s)
        theta_ss = self._g_inv @ p
        self._theta = a @ self._theta + theta_ss - a @ theta_ss
        return self.temperatures()

    def time_constants(self) -> np.ndarray:
        """Sorted thermal time constants (s) — eigenvalues of (C^-1 G)^-1."""
        self._require_finalized()
        m = self._g_matrix / self._cap_vector[:, None]
        eigvals = np.linalg.eigvals(m)
        return np.sort(1.0 / np.real(eigvals))[::-1]

    # --- internals --------------------------------------------------------------------------
    def _require_finalized(self) -> None:
        if not self._finalized:
            raise RuntimeError("call finalize() before using the network")

    def _power_vector(self, power_w: Mapping[str, float]) -> np.ndarray:
        p = np.zeros(self.n_nodes)
        for name, value in power_w.items():
            if name not in self._index:
                raise KeyError(f"unknown thermal node {name!r}")
            if value < 0:
                raise ValueError(f"negative power at node {name!r}")
            p[self._index[name]] = float(value)
        check_finite("power vector", p)
        return p

    def _propagator(self, dt_s: float) -> np.ndarray:
        cached = self._expm_cache.get(dt_s)
        if cached is None:
            m = -self._g_matrix / self._cap_vector[:, None]
            cached = expm(m * dt_s)
            self._expm_cache[dt_s] = cached
        return cached
