"""Lumped RC thermal network with an exact matrix-exponential integrator.

The network is the standard compact thermal model: nodes with heat
capacities ``C_i`` connected by thermal conductances ``G_ij``, plus
conductances to a fixed-temperature ambient.  Working in temperatures
*above ambient* ``theta = T - T_amb`` gives the linear state-space system

    C * dtheta/dt = -G * theta + P(t)

where ``G`` is the (symmetric, positive-definite) conductance Laplacian
augmented with the ambient conductances on the diagonal, and ``P`` is the
per-node power injection.  For a step of length ``dt`` with power held
constant the exact solution is

    theta(t + dt) = A * theta(t) + B * P,
    A = expm(-C^-1 G dt),      B = (I - A) * G^-1.

Both operators are fused into a single ``(n, 2n)`` step matrix
``M = [A | B]`` applied to the concatenated ``[theta; P]`` vector, so
stepping is exactly one mat-vec with no solve and no intermediate
steady-state vector — fast enough to run hours of simulated time at a
10 ms resolution.  The simulation kernel uses the array-native surface
(:meth:`step_vector`, :attr:`theta`, :meth:`indices_of`) to avoid
rebuilding ``Dict[str, float]`` maps on the hot path; the name-keyed
methods remain for construction-time and analysis use.

The fused operator is evaluated with ``np.einsum`` rather than ``@``:
einsum's contraction loop computes each output row identically whether it
is applied to one state vector or to a stacked ``(N, nodes)`` batch, which
is what makes the batched backend (:mod:`repro.sim.batch`) bit-identical
to the scalar kernel.  Operators are cached per canonicalized ``dt`` in a
bounded per-instance cache and shared across network *instances* through a
module-level cache keyed by a digest of ``(G, C)`` — every cell of an
experiment grid built from the same platform and cooling reuses one
operator (see :meth:`fused_step_operator` / :attr:`operator_digest`).

Physical invariants (exercised by the property-test suite):

* passivity: with P = 0, ``max |theta|`` never increases;
* the steady state for constant P is ``G^-1 P`` regardless of the path;
* superposition: the response is linear in P.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np
from scipy.linalg import expm

from repro.utils.hotpath import hot_path
from repro.utils.validation import check_finite, check_positive


def canonical_dt(dt_s: float) -> float:
    """Canonicalize a timestep for operator-cache keying.

    Rounds to 12 significant digits so near-equal timesteps produced by
    different drivers (e.g. ``0.01`` vs ``0.1 / 10``) collapse onto one
    cache entry instead of silently growing duplicate operators.  Twelve
    significant digits is far finer than any physically meaningful dt
    difference while absorbing last-bit float noise.
    """
    return float(f"{float(dt_s):.12g}")


#: Fused step operators shared across network instances, keyed by
#: ``(operator_digest, canonical_dt)``.  Every grid cell built from the
#: same platform + cooling has bitwise-identical ``(G, C)`` and therefore
#: the same digest, so an entire experiment grid computes each matrix
#: exponential exactly once per (platform, dt) pair.
_SHARED_OPERATOR_CACHE: "OrderedDict[Tuple[str, float], np.ndarray]" = OrderedDict()
_SHARED_OPERATOR_CACHE_MAX = 64
#: Bound for the per-instance caches (propagators and fused operators).
_INSTANCE_CACHE_MAX = 16


class RCThermalNetwork:
    """A compact RC thermal model over named nodes.

    Build the network with :meth:`add_node`, :meth:`connect`, and
    :meth:`connect_to_ambient`, then call :meth:`finalize` once before
    stepping.  Temperatures are reported in degrees Celsius; the ambient
    temperature can be changed at run time (it shifts all node temperatures
    since the model is linear in ``theta``).
    """

    def __init__(self, ambient_temp_c: float = 25.0) -> None:
        self.ambient_temp_c = float(ambient_temp_c)
        self._names: List[str] = []
        self._index: Dict[str, int] = {}
        self._capacitance: List[float] = []
        self._edges: List[Tuple[int, int, float]] = []
        self._ambient_conductance: Dict[int, float] = {}
        self._finalized = False
        # Assembled by finalize(); empty placeholders until then so the
        # attributes are non-Optional (``_require_finalized`` is the guard).
        self._cap_vector: np.ndarray = np.empty(0)
        self._g_matrix: np.ndarray = np.empty((0, 0))
        self._g_inv: np.ndarray = np.empty((0, 0))
        self._theta: np.ndarray = np.empty(0)
        self._x_buffer: np.ndarray = np.empty(0)
        self._operator_digest = ""
        # Bounded caches keyed by canonical dt (see ``canonical_dt``):
        # raw propagators A = expm(-C^-1 G dt) and fused [A | B] operators.
        self._expm_cache: "OrderedDict[float, np.ndarray]" = OrderedDict()
        self._step_cache: "OrderedDict[float, np.ndarray]" = OrderedDict()
        self._indices_cache: Dict[Tuple[str, ...], np.ndarray] = {}

    # --- construction -------------------------------------------------------------
    def add_node(self, name: str, capacitance_j_per_k: float) -> None:
        """Register a thermal node with the given heat capacity."""
        if self._finalized:
            raise RuntimeError("network already finalized")
        if name in self._index:
            raise ValueError(f"duplicate thermal node {name!r}")
        check_positive(f"capacitance of {name}", capacitance_j_per_k)
        self._index[name] = len(self._names)
        self._names.append(name)
        self._capacitance.append(float(capacitance_j_per_k))

    def connect(self, a: str, b: str, conductance_w_per_k: float) -> None:
        """Add a thermal conductance between nodes ``a`` and ``b``."""
        if self._finalized:
            raise RuntimeError("network already finalized")
        check_positive(f"conductance {a}-{b}", conductance_w_per_k)
        ia, ib = self._index[a], self._index[b]
        if ia == ib:
            raise ValueError("cannot connect a node to itself")
        self._edges.append((ia, ib, float(conductance_w_per_k)))

    def connect_to_ambient(self, name: str, conductance_w_per_k: float) -> None:
        """Add a conductance from ``name`` to the fixed-temperature ambient."""
        if self._finalized:
            raise RuntimeError("network already finalized")
        check_positive(f"ambient conductance of {name}", conductance_w_per_k)
        idx = self._index[name]
        self._ambient_conductance[idx] = (
            self._ambient_conductance.get(idx, 0.0) + conductance_w_per_k
        )

    def finalize(self) -> None:
        """Assemble matrices and reset temperatures to ambient."""
        if self._finalized:
            raise RuntimeError("network already finalized")
        n = len(self._names)
        if n == 0:
            raise ValueError("thermal network has no nodes")
        if not self._ambient_conductance:
            raise ValueError("no path to ambient: temperatures would diverge")
        g = np.zeros((n, n))
        for ia, ib, cond in self._edges:
            g[ia, ia] += cond
            g[ib, ib] += cond
            g[ia, ib] -= cond
            g[ib, ia] -= cond
        for idx, cond in self._ambient_conductance.items():
            g[idx, idx] += cond
        self._cap_vector = np.asarray(self._capacitance, dtype=float)
        self._g_matrix = g
        self._g_inv = np.linalg.inv(g)
        self._theta = np.zeros(n)
        self._x_buffer = np.empty(2 * n)
        self._operator_digest = hashlib.sha256(
            g.tobytes() + self._cap_vector.tobytes()
        ).hexdigest()
        self._finalized = True

    # --- introspection -------------------------------------------------------------
    @property
    def node_names(self) -> List[str]:
        return list(self._names)

    @property
    def n_nodes(self) -> int:
        return len(self._names)

    def node_index(self, name: str) -> int:
        return self._index[name]

    @property
    def index_map(self) -> Dict[str, int]:
        """Node name -> state-vector index (do not mutate)."""
        return self._index

    def indices_of(self, names: List[str]) -> np.ndarray:
        """Cached index array for a node-name list (for fancy indexing).

        The returned array is shared between calls with the same names —
        treat it as read-only.
        """
        key = tuple(names)
        cached = self._indices_cache.get(key)
        if cached is None:
            cached = np.array([self._index[n] for n in names], dtype=np.intp)
            self._indices_cache[key] = cached
        return cached

    @property
    def conductance_matrix(self) -> np.ndarray:
        """The assembled conductance Laplacian (finalized networks only)."""
        self._require_finalized()
        return self._g_matrix.copy()

    @property
    def operator_digest(self) -> str:
        """Digest of ``(G, C)`` identifying this network's step operators.

        Two finalized networks with equal digests produce bitwise-identical
        step operators for any dt; the batched backend groups cells by this
        digest to step them in lockstep with one shared operator.
        """
        self._require_finalized()
        return self._operator_digest

    # --- state access ----------------------------------------------------------------
    @property
    def theta(self) -> np.ndarray:
        """No-copy view of the state vector (deg C above ambient).

        Read-only by convention: mutate through :meth:`set_temperatures` /
        :meth:`reset` so invariants hold.
        """
        self._require_finalized()
        return self._theta

    def temperatures_array(self) -> np.ndarray:
        """Node temperatures (deg C) as an ndarray in node-index order."""
        self._require_finalized()
        return self._theta + self.ambient_temp_c

    def max_temperature_at(self, indices: np.ndarray) -> float:
        """Max temperature (deg C) over the given node indices."""
        self._require_finalized()
        return float(np.max(self._theta[indices]) + self.ambient_temp_c)

    def temperatures(self) -> Dict[str, float]:
        """Current temperature (deg C) of every node."""
        self._require_finalized()
        return {
            name: float(self._theta[i] + self.ambient_temp_c)
            for i, name in enumerate(self._names)
        }

    def temperature_of(self, name: str) -> float:
        self._require_finalized()
        return float(self._theta[self._index[name]] + self.ambient_temp_c)

    def max_temperature(self, nodes: Optional[List[str]] = None) -> float:
        """Max temperature over ``nodes`` (default: all nodes)."""
        self._require_finalized()
        if nodes is None:
            return float(np.max(self._theta) + self.ambient_temp_c)
        return self.max_temperature_at(self.indices_of(nodes))

    def set_temperatures(self, temps_c: Mapping[str, float]) -> None:
        """Force node temperatures (used to start runs warm or cold)."""
        self._require_finalized()
        for name, temp in temps_c.items():
            self._theta[self._index[name]] = float(temp) - self.ambient_temp_c

    def reset(self, temp_c: Optional[float] = None) -> None:
        """Reset every node to ``temp_c`` (default: ambient)."""
        self._require_finalized()
        value = self.ambient_temp_c if temp_c is None else float(temp_c)
        self._theta[:] = value - self.ambient_temp_c

    # --- dynamics -----------------------------------------------------------------------
    def steady_state(self, power_w: Mapping[str, float]) -> Dict[str, float]:
        """Temperatures reached if ``power_w`` were applied forever."""
        self._require_finalized()
        p = self._power_vector(power_w)
        theta_ss = self._g_inv @ p
        return {
            name: float(theta_ss[i] + self.ambient_temp_c)
            for i, name in enumerate(self._names)
        }

    def step(self, power_w: Mapping[str, float], dt_s: float) -> Dict[str, float]:
        """Advance the network by ``dt_s`` with constant power, return temps."""
        self._require_finalized()
        check_positive("dt_s", dt_s)
        self.step_vector(self._power_vector(power_w), dt_s)
        return self.temperatures()

    @hot_path
    def step_vector(self, power_w: np.ndarray, dt_s: float) -> np.ndarray:
        """Array-native step: advance by ``dt_s`` with per-node power vector.

        The hot-path variant of :meth:`step`: the caller supplies power in
        node-index order (see :meth:`indices_of`) and gets back the updated
        ``theta`` view.  No validation, no dict construction — one fused
        einsum mat-vec over ``[theta; p]``, bit-identical per row to the
        batched :meth:`step_batch` path.
        """
        m = self.fused_step_operator(dt_s)
        x = self._x_buffer
        n = self._theta.shape[0]
        x[:n] = self._theta
        x[n:] = power_w
        # Write in place so the `theta` view stays live across steps.
        np.einsum("ij,j->i", m, x, out=self._theta)
        return self._theta

    @hot_path
    def step_batch(
        self,
        theta: np.ndarray,
        power_w: np.ndarray,
        dt_s: float,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Advance a whole ``(N, nodes)`` batch of cell states by ``dt_s``.

        ``theta`` and ``power_w`` are stacked per-cell state and power
        arrays (row ``i`` is cell ``i``); the instance's own ``theta`` is
        untouched.  Every row of the result is bitwise identical to what
        :meth:`step_vector` would produce from that row alone — einsum's
        contraction is batch-size-invariant — which is the contract the
        batched backend's golden-trace equivalence rests on.
        """
        m = self.fused_step_operator(dt_s)
        x = np.ascontiguousarray(np.concatenate((theta, power_w), axis=1))
        return np.einsum("ij,nj->ni", m, x, out=out)

    def time_constants(self) -> np.ndarray:
        """Sorted thermal time constants (s) — eigenvalues of (C^-1 G)^-1."""
        self._require_finalized()
        m = self._g_matrix / self._cap_vector[:, None]
        eigvals = np.linalg.eigvals(m)
        return np.sort(1.0 / np.real(eigvals))[::-1]

    # --- internals --------------------------------------------------------------------------
    def _require_finalized(self) -> None:
        if not self._finalized:
            raise RuntimeError("call finalize() before using the network")

    def _power_vector(self, power_w: Mapping[str, float]) -> np.ndarray:
        p = np.zeros(self.n_nodes)
        for name, value in power_w.items():
            if name not in self._index:
                raise KeyError(f"unknown thermal node {name!r}")
            if value < 0:
                raise ValueError(f"negative power at node {name!r}")
            p[self._index[name]] = float(value)
        check_finite("power vector", p)
        return p

    def _propagator(self, dt_s: float) -> np.ndarray:
        """The propagator A = expm(-C^-1 G dt), cached per canonical dt."""
        key = canonical_dt(dt_s)
        cached = self._expm_cache.get(key)
        if cached is None:
            m = -self._g_matrix / self._cap_vector[:, None]
            cached = expm(m * key)
            self._expm_cache[key] = cached
            while len(self._expm_cache) > _INSTANCE_CACHE_MAX:
                self._expm_cache.popitem(last=False)
        return cached

    def fused_step_operator(self, dt_s: float) -> np.ndarray:
        """The fused ``(n, 2n)`` operator ``M = [A | B]`` for this dt.

        ``theta' = M @ [theta; p]`` advances one step exactly.  Looked up
        first in the bounded per-instance cache, then in the module-level
        cache shared by every network with the same :attr:`operator_digest`
        (so a grid of cells on one platform computes each expm once), and
        computed on a miss.  The returned array is shared — treat it as
        read-only.
        """
        self._require_finalized()
        key = canonical_dt(dt_s)
        cached = self._step_cache.get(key)
        if cached is not None:
            return cached
        # Instances assembled by hand (tests poke privates) may lack a
        # digest; they must not collide in the shared cache.
        shared_key = (self._operator_digest, key)
        shared = (
            _SHARED_OPERATOR_CACHE.get(shared_key) if self._operator_digest else None
        )
        if shared is None:
            a = self._propagator(dt_s)
            b = (np.eye(self.n_nodes) - a) @ self._g_inv
            shared = np.ascontiguousarray(np.concatenate((a, b), axis=1))
            if self._operator_digest:
                # Pure memoization: the stored operator is a deterministic
                # function of (digest, dt), so post-fork writes stay private
                # to each child and can never make a result depend on cell
                # scheduling order.
                _SHARED_OPERATOR_CACHE[shared_key] = shared  # repro-lint: ignore[FORK001]
                while len(_SHARED_OPERATOR_CACHE) > _SHARED_OPERATOR_CACHE_MAX:
                    _SHARED_OPERATOR_CACHE.popitem(last=False)  # repro-lint: ignore[FORK001]
        else:
            _SHARED_OPERATOR_CACHE.move_to_end(shared_key)
        self._step_cache[key] = shared
        while len(self._step_cache) > _INSTANCE_CACHE_MAX:
            self._step_cache.popitem(last=False)
        return shared
