"""Build an RC thermal network from a platform floorplan.

The construction mirrors compact-thermal-model practice:

* every floorplan tile becomes a silicon node whose capacitance is the
  volumetric heat capacity of silicon times the tile volume (die thickness
  plus an effective spreading layer above the die);
* laterally adjacent tiles are connected with a conductance proportional to
  the shared edge length and inversely proportional to the center distance;
* every tile connects vertically (through the package) to a single board
  node with a conductance proportional to its area;
* the board node convects to ambient with the cooling-dependent conductance
  from :class:`repro.thermal.cooling.CoolingConfig`.

Default material constants produce the temperature ranges the paper
reports on the HiKey 970: ~35 degC idle, ~55 degC under full load with a
fan, and DTM-triggering temperatures above 85 degC without a fan.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.platform import Platform
from repro.thermal.cooling import CoolingConfig
from repro.thermal.rc import RCThermalNetwork
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ThermalMaterials:
    """Material/geometry constants for the compact model.

    ``effective_thickness_m`` combines the thinned die and the heat
    spreading structures directly above it; ``lateral_k_w_per_mk`` is the
    effective in-plane conductivity of that composite layer.
    ``vertical_w_per_k_m2`` is the area-specific conductance from silicon
    through the package to the board.
    """

    effective_thickness_m: float = 1.0e-3
    lateral_k_w_per_mk: float = 150.0
    vertical_w_per_k_m2: float = 5500.0
    volumetric_heat_capacity_j_per_m3k: float = 1.75e6

    def __post_init__(self) -> None:
        check_positive("effective_thickness_m", self.effective_thickness_m)
        check_positive("lateral_k_w_per_mk", self.lateral_k_w_per_mk)
        check_positive("vertical_w_per_k_m2", self.vertical_w_per_k_m2)
        check_positive(
            "volumetric_heat_capacity_j_per_m3k",
            self.volumetric_heat_capacity_j_per_m3k,
        )


BOARD_NODE = "board"


def build_thermal_network(
    platform: Platform,
    cooling: CoolingConfig,
    materials: ThermalMaterials = ThermalMaterials(),
) -> RCThermalNetwork:
    """Assemble and finalize the RC network for ``platform`` + ``cooling``."""
    if not platform.floorplan:
        raise ValueError(f"platform {platform.name!r} has no floorplan")
    net = RCThermalNetwork(ambient_temp_c=platform.ambient_temp_c)

    tiles = platform.floorplan
    for name, tile in tiles.items():
        volume = tile.area * materials.effective_thickness_m
        net.add_node(name, materials.volumetric_heat_capacity_j_per_m3k * volume)

    net.add_node(BOARD_NODE, cooling.board_capacitance_j_per_k)

    # Lateral conduction between adjacent tiles.
    for (name_a, tile_a), (name_b, tile_b) in combinations(tiles.items(), 2):
        edge = tile_a.shares_edge_with(tile_b)
        if edge <= 0.0:
            continue
        ca, cb = tile_a.center, tile_b.center
        distance = ((ca[0] - cb[0]) ** 2 + (ca[1] - cb[1]) ** 2) ** 0.5
        conductance = (
            materials.lateral_k_w_per_mk
            * materials.effective_thickness_m
            * edge
            / distance
        )
        net.connect(name_a, name_b, conductance)

    # Vertical conduction from every tile to the board, then to ambient.
    for name, tile in tiles.items():
        net.connect(name, BOARD_NODE, materials.vertical_w_per_k_m2 * tile.area)
    net.connect_to_ambient(BOARD_NODE, cooling.board_to_ambient_w_per_k)

    net.finalize()
    return net
