"""Thermal substrate: lumped RC network, cooling configurations, sensors.

The paper argues that temperature differs fundamentally from power/energy
because of **spatial** (heat transfer between blocks) and **temporal** (heat
capacity) effects.  This package models both with a compact thermal model in
the spirit of HotSpot: every floorplan tile becomes an RC node coupled
laterally to adjacent tiles and vertically to a board node, which convects
to ambient through a cooling-dependent conductance (fan vs. no fan).
"""

from repro.thermal.cooling import CoolingConfig, FAN_COOLING, PASSIVE_COOLING
from repro.thermal.rc import RCThermalNetwork
from repro.thermal.builder import build_thermal_network
from repro.thermal.sensor import TemperatureSensor
from repro.thermal.reduction import ReducedThermalModel, reduce_network

__all__ = [
    "CoolingConfig",
    "FAN_COOLING",
    "PASSIVE_COOLING",
    "RCThermalNetwork",
    "build_thermal_network",
    "TemperatureSensor",
    "ReducedThermalModel",
    "reduce_network",
]
