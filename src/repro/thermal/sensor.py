"""On-chip temperature sensor model.

The HiKey 970 exposes a single SoC thermal sensor that the paper samples at
20 Hz.  Real thermal sensors report the hottest monitored location with
limited resolution and some noise; :class:`TemperatureSensor` models all
three aspects.  Both the DTM logic and the experiment metrics read the
sensor rather than ground-truth node temperatures, so every reported result
is subject to the same observability limits as the board.
"""

from __future__ import annotations

from typing import List, Optional

from repro.thermal.rc import RCThermalNetwork
from repro.utils.rng import RandomSource
from repro.utils.validation import check_non_negative, check_positive


class TemperatureSensor:
    """Samples the max temperature over monitored nodes at a fixed rate.

    Parameters
    ----------
    network:
        The thermal network to observe.
    nodes:
        Names of the monitored nodes (default: every silicon node except
        the board).  The sensor reports the max over them, matching SoC
        thermal-zone behaviour.
    sample_period_s:
        Sampling interval; the paper samples at 20 Hz (0.05 s).
    quantization_c:
        Reporting resolution in degrees Celsius (0 disables quantization).
    noise_std_c:
        Gaussian measurement noise standard deviation.
    """

    def __init__(
        self,
        network: RCThermalNetwork,
        nodes: Optional[List[str]] = None,
        sample_period_s: float = 0.05,
        quantization_c: float = 0.1,
        noise_std_c: float = 0.0,
        rng: Optional[RandomSource] = None,
    ) -> None:
        check_positive("sample_period_s", sample_period_s)
        check_non_negative("quantization_c", quantization_c)
        check_non_negative("noise_std_c", noise_std_c)
        self.network = network
        if nodes is None:
            nodes = [n for n in network.node_names if n != "board"]
        if not nodes:
            raise ValueError("sensor needs at least one monitored node")
        for n in nodes:
            network.node_index(n)  # raises KeyError for unknown nodes
        self.nodes = list(nodes)
        self.sample_period_s = sample_period_s
        self.quantization_c = quantization_c
        self.noise_std_c = noise_std_c
        self._rng = rng or RandomSource(0)
        self._last_sample_time: Optional[float] = None
        self._last_value: Optional[float] = None

    def _due(self, now_s: float) -> bool:
        """Whether a fresh sample is due at ``now_s`` (20 Hz cadence)."""
        return (
            self._last_sample_time is None
            or now_s - self._last_sample_time >= self.sample_period_s - 1e-12
        )

    def _measure(self) -> float:
        """Take one measurement: max over nodes, plus noise, quantized.

        Consumes exactly one draw of the sensor noise stream when
        ``noise_std_c > 0`` — subclasses that suppress or alter a
        measurement must keep their draw pattern explicit, because the
        stream is shared with nothing else and golden-trace equivalence
        depends on it.
        """
        value = self.network.max_temperature(self.nodes)
        if self.noise_std_c > 0.0:
            value += float(self._rng.normal(0.0, self.noise_std_c))
        if self.quantization_c > 0.0:
            value = round(value / self.quantization_c) * self.quantization_c
        return value

    def _record(self, now_s: float, value: float) -> None:
        """Hold ``value`` as the sample taken at ``now_s``."""
        self._last_value = value
        self._last_sample_time = now_s

    def read(self, now_s: float) -> float:
        """Return the sensor value at simulation time ``now_s``.

        A fresh measurement is taken only when at least one sample period
        elapsed since the previous one; otherwise the held value is
        returned, reproducing the 20 Hz zero-order-hold behaviour.
        """
        if self._due(now_s):
            self._record(now_s, self._measure())
        return float(self._last_value)

    def reset(self) -> None:
        """Forget the held sample (used when a new run starts)."""
        self._last_sample_time = None
        self._last_value = None
