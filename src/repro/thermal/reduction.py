"""Model-order reduction for RC thermal networks (modal truncation).

Compact thermal models grow quadratically expensive with floorplan detail.
The classic remedy is modal reduction: diagonalize the (symmetrized) state
matrix, keep only the slowest ``k`` modes, and evolve the reduced state.
For the step sizes resource management cares about (tens of milliseconds
and up), the fast modes have fully decayed anyway, so very few modes
reproduce the observable temperatures almost exactly.

The reduction uses the standard symmetrization trick: with
``C dθ/dt = −G θ + P`` and ``S = C^{1/2}``, the transformed system
``dx/dt = −A x + S^{-1} P`` with ``A = S^{-1} G S^{-1}`` is symmetric, so
its eigendecomposition is orthonormal and truncation is well-conditioned.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.thermal.rc import RCThermalNetwork
from repro.utils.validation import check_positive


class ReducedThermalModel:
    """A modal-truncated surrogate of a finalized :class:`RCThermalNetwork`.

    Exposes the same stepping/readout surface (``step``, ``temperatures``,
    ``steady_state``, ``max_temperature``) for the retained accuracy class:
    steady states are *exact* (the static gain is corrected), transients
    are exact in the retained modes and instantaneous in the truncated
    ones.  Consequence: on a power change, the content carried by the
    truncated (fast, core-local) modes redistributes instantly, so
    individual small tiles can jump by a few degrees while the large zone
    nodes stay accurate — use the reduced model for zone-level readouts,
    which is what the thermal sensor observes anyway.
    """

    def __init__(self, network: RCThermalNetwork, n_modes: int) -> None:
        check_positive("n_modes", n_modes)
        g = network.conductance_matrix
        caps = network._cap_vector.copy()
        n = g.shape[0]
        if n_modes > n:
            raise ValueError(f"n_modes {n_modes} exceeds network size {n}")
        self.ambient_temp_c = network.ambient_temp_c
        self._names: List[str] = list(network.node_names)
        self._index = {name: i for i, name in enumerate(self._names)}
        s_inv = 1.0 / np.sqrt(caps)
        a = (s_inv[:, None] * g) * s_inv[None, :]
        eigvals, eigvecs = np.linalg.eigh(a)
        # Smallest eigenvalues = slowest (dominant) thermal modes.
        keep = np.argsort(eigvals)[:n_modes]
        self._lam = eigvals[keep]
        self._v = eigvecs[:, keep]
        self._s_inv = s_inv
        self._g_inv = np.linalg.inv(g)
        self.n_modes = n_modes
        self._x = np.zeros(n_modes)  # modal state relative to steady state
        self._p = np.zeros(n)

    @property
    def node_names(self) -> List[str]:
        return list(self._names)

    # --- internal transforms ------------------------------------------------
    def _power_vector(self, power_w: Mapping[str, float]) -> np.ndarray:
        p = np.zeros(len(self._names))
        for name, value in power_w.items():
            p[self._index[name]] = float(value)
        return p

    # --- public surface -------------------------------------------------------
    def reset(self) -> None:
        self._x[:] = 0.0
        self._p[:] = 0.0

    def set_from(self, network: RCThermalNetwork) -> None:
        """Project the full network's current state into the modal basis."""
        theta = np.array(
            [network.temperature_of(n) - network.ambient_temp_c for n in self._names]
        )
        theta_ss = self._g_inv @ self._p
        y = (theta - theta_ss) / self._s_inv
        self._x = self._v.T @ y

    def temperatures(self) -> Dict[str, float]:
        theta_ss = self._g_inv @ self._p
        theta = theta_ss + self._s_inv * (self._v @ self._x)
        return {
            name: float(theta[i] + self.ambient_temp_c)
            for i, name in enumerate(self._names)
        }

    def max_temperature(self, nodes: Optional[List[str]] = None) -> float:
        temps = self.temperatures()
        names = nodes if nodes is not None else self._names
        return max(temps[n] for n in names)

    def steady_state(self, power_w: Mapping[str, float]) -> Dict[str, float]:
        theta_ss = self._g_inv @ self._power_vector(power_w)
        return {
            name: float(theta_ss[i] + self.ambient_temp_c)
            for i, name in enumerate(self._names)
        }

    def step(self, power_w: Mapping[str, float], dt_s: float) -> Dict[str, float]:
        """Advance the reduced model by ``dt_s`` with constant power."""
        check_positive("dt_s", dt_s)
        p_new = self._power_vector(power_w)
        if not np.array_equal(p_new, self._p):
            # Power changed: shift the modal state so the *physical* state
            # is continuous across the change of steady-state reference.
            theta_old_ss = self._g_inv @ self._p
            theta_new_ss = self._g_inv @ p_new
            delta_y = (theta_old_ss - theta_new_ss) / self._s_inv
            self._x = self._x + self._v.T @ delta_y
            self._p = p_new
        self._x = np.exp(-self._lam * dt_s) * self._x
        return self.temperatures()


def reduce_network(network: RCThermalNetwork, n_modes: int) -> ReducedThermalModel:
    """Build a :class:`ReducedThermalModel` keeping the ``n_modes`` slowest
    modes of ``network``."""
    return ReducedThermalModel(network, n_modes)
